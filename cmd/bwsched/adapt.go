package main

// The adapt subcommand drives the closed adaptation loop of Section 5:
// inject faults into a simulated run, detect the drift against the
// deployed schedule, re-negotiate with the distributed procedure on the
// measured platform, and hot-swap the re-solved schedule mid-run. The
// output pins the demo contract CI greps for: the stale regime must
// report "pre-swap: FAIL", the adapted regime "post-swap: PASS", and the
// command exits 0 only when the run healed.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bwc"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

var faultKinds = map[string]bwc.FaultKind{
	"link-set":     bwc.FaultLinkSet,
	"link-scale":   bwc.FaultLinkScale,
	"link-restore": bwc.FaultLinkRestore,
	"node-set":     bwc.FaultNodeSet,
	"node-scale":   bwc.FaultNodeScale,
	"node-restore": bwc.FaultNodeRestore,
	"crash":        bwc.FaultCrash,
}

// parseFault reads one -fault spec: at:kind:node[:value].
func parseFault(spec string) (bwc.Fault, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 && len(parts) != 4 {
		return bwc.Fault{}, fmt.Errorf("fault %q: want at:kind:node[:value]", spec)
	}
	at, err := bwc.ParseRat(parts[0])
	if err != nil {
		return bwc.Fault{}, fmt.Errorf("fault %q: at: %v", spec, err)
	}
	kind, ok := faultKinds[parts[1]]
	if !ok {
		return bwc.Fault{}, fmt.Errorf("fault %q: unknown kind %q (want one of link-set, link-scale, link-restore, node-set, node-scale, node-restore, crash)", spec, parts[1])
	}
	f := bwc.Fault{At: at, Node: parts[2], Kind: kind}
	needsValue := kind == bwc.FaultLinkSet || kind == bwc.FaultLinkScale ||
		kind == bwc.FaultNodeSet || kind == bwc.FaultNodeScale
	if needsValue != (len(parts) == 4) {
		if needsValue {
			return bwc.Fault{}, fmt.Errorf("fault %q: kind %s needs a value", spec, parts[1])
		}
		return bwc.Fault{}, fmt.Errorf("fault %q: kind %s takes no value", spec, parts[1])
	}
	if needsValue {
		if f.Value, err = bwc.ParseRat(parts[3]); err != nil {
			return bwc.Fault{}, fmt.Errorf("fault %q: value: %v", spec, err)
		}
	}
	return f, nil
}

func cmdAdapt(args []string) error {
	fs := flag.NewFlagSet("adapt", flag.ExitOnError)
	file := fs.String("f", "-", "platform file ('-' = stdin)")
	degrade := fs.String("degrade", "", "link degradation as node=newComm (e.g. P1=4)")
	at := fs.String("at", "120", "time of the -degrade change")
	var faultSpecs multiFlag
	fs.Var(&faultSpecs, "fault", "scripted fault as at:kind:node[:value]; repeatable")
	random := fs.Int("random", 0, "generate this many seeded random degradations instead")
	seed := fs.Int64("seed", 1, "seed for -random")
	stop := fs.String("stop", "400", "detection horizon: the root stops releasing at this time")
	window := fs.String("window", "", "drift-detection window (default: the schedule's rootless period)")
	threshold := fs.Float64("threshold", 0.85, "minimum worst-node achieved/α ratio per window")
	k := fs.Int("k", 2, "consecutive bad windows that fire the detector")
	maxAdapts := fs.Int("max-adapts", 4, "re-negotiation budget before giving up")
	detectOnly := fs.Bool("detect-only", false, "report the first drift as an error instead of adapting")
	asJSON := fs.Bool("json", false, "print the post-swap health report as JSON")
	logOut := fs.String("log-out", "", "write controller events + span JSONL to this file ('-' = stdout)")
	fs.Parse(args)
	t, err := loadPlatform(*file)
	if err != nil {
		return err
	}
	stopAt, err := bwc.ParseRat(*stop)
	if err != nil {
		return err
	}

	var faults []bwc.Fault
	if *degrade != "" {
		name, commS, ok := strings.Cut(*degrade, "=")
		if !ok {
			return fmt.Errorf("need -degrade node=newComm")
		}
		comm, err := bwc.ParseRat(commS)
		if err != nil {
			return err
		}
		atR, err := bwc.ParseRat(*at)
		if err != nil {
			return err
		}
		faults = append(faults, bwc.DegradeLink(atR, name, comm))
	}
	for _, spec := range faultSpecs {
		f, err := parseFault(spec)
		if err != nil {
			return err
		}
		faults = append(faults, f)
	}
	if *random > 0 {
		faults = append(faults, bwc.RandomFaults(t, *seed, *random, stopAt)...)
	}
	if len(faults) == 0 {
		return fmt.Errorf("no faults given; use -degrade, -fault or -random")
	}

	res := sess.Solve(t)

	opts := []bwc.Option{
		bwc.WithFaults(faults...),
		bwc.WithStop(stopAt),
		bwc.WithDriftThreshold(*threshold),
		bwc.WithDriftDebounce(*k),
		bwc.WithMaxAdapts(*maxAdapts),
	}
	if *window != "" {
		w, err := bwc.ParseRat(*window)
		if err != nil {
			return err
		}
		opts = append(opts, bwc.WithDriftWindow(w))
	}
	if *detectOnly {
		opts = append(opts, bwc.WithDetectOnly())
	}
	var logW io.WriteCloser
	if *logOut != "" {
		ob := bwc.NewObserver()
		if logW, err = openOut(*logOut); err != nil {
			return err
		}
		defer logW.Close()
		ob.AttachJSONL(logW)
		defer ob.Close()
		opts = append(opts, bwc.WithObserver(ob))
	}

	fmt.Printf("platform:  %d nodes, optimal steady state %s tasks/unit\n", t.Len(), res.Throughput)
	fmt.Printf("fault timeline:\n")
	for _, f := range faults {
		fmt.Printf("  %s\n", f)
	}

	rep, err := sess.SimulateAdaptive(t, opts...)
	if err != nil {
		return err
	}
	for i, ad := range rep.Adaptations {
		fmt.Printf("drift:     t=%s, worst node %s at %.0f%% of its α share\n",
			ad.Drift.At, ad.Drift.Window.WorstNode, 100*ad.Drift.Window.MinRatio)
		pruned := "none"
		if len(ad.Pruned) > 0 {
			pruned = strings.Join(ad.Pruned, ",")
		}
		fmt.Printf("adapt #%d:  swap at t=%s, resume t=%s, throughput %s (visited %d, messages %d, pruned %s)\n",
			i+1, ad.SwapAt, ad.ResumeAt, ad.Throughput, ad.Visited, ad.Messages, pruned)
	}
	if len(rep.Adaptations) == 0 {
		fmt.Printf("no drift detected over [0, %s]; schedule still conforms\n", rep.Stop)
	}
	if rep.Pre != nil {
		fmt.Printf("pre-swap:  %s\n", verdictLine(rep.Pre))
	}
	if rep.Post != nil {
		fmt.Printf("post-swap: %s (verified to t=%s)\n", verdictLine(rep.Post), rep.Stop)
	}
	if *asJSON && rep.Post != nil {
		if err := rep.Post.WriteJSON(os.Stdout); err != nil {
			return err
		}
	} else if rep.Post != nil {
		if err := rep.Post.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if !rep.Healed {
		return fmt.Errorf("adapt: final regime failed %d conformance check(s)", rep.Post.Failed)
	}
	fmt.Printf("healed: the run converged to the re-negotiated steady state\n")
	return nil
}

// verdictLine summarizes a health report as PASS/FAIL with counts.
func verdictLine(r *bwc.HealthReport) string {
	if r.Healthy() {
		return fmt.Sprintf("PASS (%d checks, %d skipped)", r.Passed, r.Skipped)
	}
	return fmt.Sprintf("FAIL (%d of %d checks failed)", r.Failed, r.Passed+r.Failed)
}

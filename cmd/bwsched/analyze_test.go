package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwc"
)

// writePaperPlatform drops the paper's example platform into dir.
func writePaperPlatform(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "paper.txt")
	if err := os.WriteFile(path, []byte(bwc.FormatPlatform(bwc.PaperExampleTree())), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestAnalyzeCleanRunExitsZero drives the documented offline loop: obs
// writes the JSONL evidence, analyze replays it and exits 0 with every
// check passing.
func TestAnalyzeCleanRunExitsZero(t *testing.T) {
	dir := t.TempDir()
	plat := writePaperPlatform(t, dir)
	log := filepath.Join(dir, "run.jsonl")

	if code := run([]string{"obs", "-f", plat, "-stop", "200", "-log-out", log}); code != 0 {
		t.Fatalf("obs exit %d", code)
	}
	stderr, code := captureStderr(t, func() int {
		return run([]string{"analyze", "-trace", log, "-f", plat, "-stop", "200"})
	})
	if code != 0 {
		t.Fatalf("analyze exit %d, stderr %q", code, stderr)
	}
}

// TestAnalyzeFaultExitsNonzero pins the CI contract: evidence from a run
// whose link degraded under a stale schedule must make analyze exit
// nonzero with a structured error naming the failed checks.
func TestAnalyzeFaultExitsNonzero(t *testing.T) {
	dir := t.TempDir()
	plat := writePaperPlatform(t, dir)

	tr := bwc.PaperExampleTree()
	s, err := bwc.BuildSchedule(bwc.Solve(tr))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := tr.WithCommTime(tr.MustLookup("P4"), bwc.RatInt(6))
	if err != nil {
		t.Fatal(err)
	}
	ob := bwc.NewObserver()
	_, err = bwc.SimulateDynamic(bwc.DynOptions{
		Phases:  []bwc.DynPhase{{Schedule: s}},
		Physics: []bwc.DynPhysics{{Tree: slow}},
		Stop:    bwc.RatInt(360),
		Obs:     ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := filepath.Join(dir, "fault.jsonl")
	f, err := os.Create(log)
	if err != nil {
		t.Fatal(err)
	}
	if err := ob.WriteSpansJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	stderr, code := captureStderr(t, func() int {
		return run([]string{"analyze", "-trace", log, "-f", plat, "-stop", "360"})
	})
	if code != 1 {
		t.Fatalf("analyze exit %d, want 1 (stderr %q)", code, stderr)
	}
	if !strings.Contains(stderr, "conformance check(s) failed") {
		t.Fatalf("stderr %q does not report failed checks", stderr)
	}
}

// TestDynamicLogOutFeedsAnalyze is the CI smoke, pinned as a test: the
// dynamic command's -log-out evidence of a stale schedule over a
// degraded link makes analyze exit 1.
func TestDynamicLogOutFeedsAnalyze(t *testing.T) {
	dir := t.TempDir()
	plat := writePaperPlatform(t, dir)
	log := filepath.Join(dir, "fault.jsonl")
	if code := run([]string{"dynamic", "-f", plat, "-degrade", "P4=6",
		"-at", "0", "-lag", "1000", "-stop", "360", "-log-out", log}); code != 0 {
		t.Fatalf("dynamic exit %d", code)
	}
	stderr, code := captureStderr(t, func() int {
		return run([]string{"analyze", "-trace", log, "-f", plat, "-stop", "360"})
	})
	if code != 1 || !strings.Contains(stderr, "conformance check(s) failed") {
		t.Fatalf("analyze exit %d, stderr %q", code, stderr)
	}
}

// TestAnalyzeRequiresTrace: missing -trace is a command error, not a
// silent empty report.
func TestAnalyzeRequiresTrace(t *testing.T) {
	stderr, code := captureStderr(t, func() int { return run([]string{"analyze"}) })
	if code != 1 || !strings.Contains(stderr, "-trace is required") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

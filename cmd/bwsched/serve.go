package main

// Client/daemon mode: `bwsched serve` runs the bwschedd control plane
// (internal/server); `bwsched submit` and `bwsched watch` drive a running
// daemon over the api/v1 wire API. Errors that arrive as api/v1 envelopes
// unwrap to the same facade sentinels the in-process commands return, so
// exitCode maps them to identical exit codes; a daemon that cannot be
// reached at all maps to bwc.ErrDaemonUnreachable (exit 10).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"bwc"
	apiv1 "bwc/api/v1"
	"bwc/internal/server"
)

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", server.DefaultAddr, "listen address (host:0 picks a free port)")
	maxSessions := fs.Int("max-sessions", 64, "LRU bound on concurrently cached tenant sessions")
	history := fs.Int("history", 256, "retained run records")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	fs.Parse(args)
	srv := server.New(server.Options{
		Addr:        *addr,
		MaxSessions: *maxSessions,
		History:     *history,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Close()
	bound := srv.Addr()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("bwschedd listening on http://%s (api %s)\n", bound, apiv1.Version)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("bwschedd: shutting down")
	return nil
}

// serverURL normalizes the -server flag into a base URL.
func serverURL(s string) string {
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// unreachable wraps a transport-level failure (no HTTP response at all)
// with the sentinel exitCode maps to 10.
func unreachable(base string, err error) error {
	return fmt.Errorf("%w at %s: %v", bwc.ErrDaemonUnreachable, base, err)
}

// postJSON posts body to base+path and decodes a 2xx response into out.
// Non-2xx responses are decoded as api/v1 envelopes and returned as the
// typed *apiv1.Error, which unwraps to the matching facade sentinel.
func postJSON(base, path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return unreachable(base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var env apiv1.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			return fmt.Errorf("bwschedd returned HTTP %d with no error envelope", resp.StatusCode)
		}
		return env.Error
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// loadPlatformText reads the raw platform text (the wire carries text,
// not parsed trees; the daemon parses and fingerprints it).
func loadPlatformText(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	srv := fs.String("server", server.DefaultAddr, "bwschedd address")
	file := fs.String("f", "-", "platform file ('-' = stdin)")
	block := fs.Bool("block", false, "block allocation instead of interleaving")
	quantize := fs.Int64("quantize", 0, "quantize rates to denominators dividing D")
	analyze := fs.Bool("analyze", false, "run the conformance analyzer instead of returning the schedule")
	asJSON := fs.Bool("json", false, "print the raw api/v1 response")
	fs.Parse(args)
	platform, err := loadPlatformText(*file)
	if err != nil {
		return err
	}
	base := serverURL(*srv)
	if *analyze {
		var resp apiv1.AnalyzeResponse
		err := postJSON(base, apiv1.PathPrefix+"/analyze", apiv1.AnalyzeRequest{
			Platform: platform,
			Block:    *block,
		}, &resp)
		if err != nil {
			return err
		}
		if *asJSON {
			return printJSON(resp)
		}
		fmt.Printf("run:         %s\n", resp.RunID)
		fmt.Printf("fingerprint: %.12s\n", resp.Fingerprint)
		for _, c := range resp.Report.Checks {
			fmt.Printf("  %-28s %-4s %s\n", c.Name, c.Verdict, c.Detail)
		}
		fmt.Printf("healthy:     %v (%d pass / %d fail / %d skip)\n",
			resp.Report.Healthy, resp.Report.Passed, resp.Report.Failed, resp.Report.Skipped)
		return nil
	}
	var resp apiv1.SubmitResponse
	err = postJSON(base, apiv1.PathPrefix+"/platforms", apiv1.SubmitRequest{
		Platform: platform,
		Block:    *block,
		Quantize: *quantize,
	}, &resp)
	if err != nil {
		return err
	}
	if *asJSON {
		return printJSON(resp)
	}
	fmt.Printf("fingerprint:  %.12s\n", resp.Fingerprint)
	fmt.Printf("cache:        %s\n", resp.Cache)
	fmt.Printf("throughput:   %s (%.6f tasks/unit)\n", resp.Throughput, resp.ThroughputFloat)
	if resp.Quantized != "" {
		fmt.Printf("quantized:    %s\n", resp.Quantized)
	}
	fmt.Printf("nodes:        %d (%d visited)\n", resp.Nodes, resp.Visited)
	fmt.Printf("tree period:  %s\n", resp.TreePeriod)
	fmt.Printf("rootless:     %s\n", resp.RootlessPeriod)
	fmt.Printf("startup:      %s\n", resp.StartupBound)
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func cmdWatch(args []string) error {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	srv := fs.String("server", server.DefaultAddr, "bwschedd address")
	run := fs.String("run", "", "only events of this run ID")
	event := fs.String("event", "", "only events whose name has this prefix")
	n := fs.Int("n", 0, "exit after n events (0 = stream forever)")
	fs.Parse(args)
	base := serverURL(*srv)
	q := url.Values{}
	if *run != "" {
		q.Set("run", *run)
	}
	if *event != "" {
		q.Set("name", *event)
	}
	if *n > 0 {
		q.Set("n", strconv.Itoa(*n))
	}
	u := base + apiv1.PathPrefix + "/events"
	if enc := q.Encode(); enc != "" {
		u += "?" + enc
	}
	resp, err := http.Get(u)
	if err != nil {
		return unreachable(base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env apiv1.Envelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil {
			return fmt.Errorf("bwschedd returned HTTP %d with no error envelope", resp.StatusCode)
		}
		return env.Error
	}
	// SSE frames: print each data payload as one JSON line. The server
	// bounds the stream itself when n is set.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			fmt.Println(data)
		}
	}
	return sc.Err()
}

package main

import (
	"flag"
	"fmt"

	"bwc"
)

// cmdResultReturn drives the Section-9 pipeline end to end: solve the
// platform with native result-return costs, quantify the folded model's
// error, run a batch through the engine, and let the conformance
// analyzer certify that the run realized the separate flows. A nonzero
// exit means the platform degraded to folded-model behavior (or the
// upward flow failed to drain) — the regression the smoke job guards.
func cmdResultReturn(args []string) error {
	fs := flag.NewFlagSet("resultreturn", flag.ExitOnError)
	file := fs.String("f", "-", "platform file ('-' = stdin)")
	uniform := fs.String("d", "", "uniform result-return time applied to every link (rational)")
	tasks := fs.Int("n", 80, "batch size to run through the engine")
	fs.Parse(args)
	t, err := loadPlatform(*file)
	if err != nil {
		return err
	}
	if *uniform != "" {
		d, err := bwc.ParseRat(*uniform)
		if err != nil {
			return err
		}
		if t, err = bwc.PlatformWithUniformResultReturn(t, d); err != nil {
			return err
		}
	}
	if !t.HasResultReturn() {
		return fmt.Errorf("resultreturn: platform has no return costs (use -d or the text format's 5th column)")
	}

	// Solver view: greedy separate-flows rate, exact LP optimum (Verify
	// also checks the greedy result's port invariants and feasibility),
	// and the folded baseline.
	exact, err := bwc.Verify(t)
	if err != nil {
		return err
	}
	res := sess.Solve(t)
	folded, err := bwc.FoldedThroughput(t)
	if err != nil {
		return err
	}
	fmt.Printf("separate flows:  %s tasks/unit (greedy; LP optimum %s)\n", res.Throughput, exact)
	fmt.Printf("folded baseline: %s tasks/unit\n", folded)
	if folded.IsPos() && folded.Less(res.Throughput) {
		adv := res.Throughput.Div(folded)
		fmt.Printf("advantage:       %s× (%.3f)\n", adv, adv.Float64())
	}

	// Engine view: run the batch under an observer, require the upward
	// flow to drain, and take the analyzer's result-return verdict.
	ob := bwc.NewObserver()
	run, err := sess.Simulate(t, bwc.WithTasks(*tasks), bwc.WithObserver(ob))
	if err != nil {
		return err
	}
	if err := run.CheckConservation(); err != nil {
		return err
	}
	st := run.Stats
	fmt.Printf("engine run:      %d released, %d computed, %d results home (makespan %s)\n",
		st.Generated, st.Completed, st.ResultsReturned, st.Makespan)
	rep := bwc.AnalyzeRun(run)
	check := rep.Check("result-return")
	if check == nil {
		return fmt.Errorf("resultreturn: analyzer produced no result-return verdict")
	}
	fmt.Printf("analyzer:        result-return %s (%s)\n", check.Verdict, check.Detail)
	if check.Verdict != bwc.HealthPass {
		return fmt.Errorf("resultreturn: conformance check %s: %s", check.Verdict, check.Detail)
	}
	return nil
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwc"
)

// captureStderr redirects stderr while fn runs and returns what was
// printed together with fn's return value.
func captureStderr(t *testing.T, fn func() int) (string, int) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	outCh := make(chan string, 1)
	go func() {
		buf := make([]byte, 1<<20)
		n := 0
		for {
			m, err := r.Read(buf[n:])
			n += m
			if err != nil {
				break
			}
		}
		outCh <- string(buf[:n])
	}()
	code := fn()
	w.Close()
	os.Stderr = old
	return <-outCh, code
}

// TestRunStructuredErrors: malformed input must produce a structured
// "bwsched: error:" line and a non-zero exit status — never a panic.
func TestRunStructuredErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("P0 - - 9\nP1 P0 nonsense 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr, code := captureStderr(t, func() int {
		return run([]string{"throughput", "-f", bad})
	})
	if code != 4 {
		t.Fatalf("exit code %d, want 4 (ErrNotATree)", code)
	}
	if !strings.HasPrefix(stderr, "bwsched: error: ") {
		t.Fatalf("stderr not structured: %q", stderr)
	}

	stderr, code = captureStderr(t, func() int {
		return run([]string{"no-such-command"})
	})
	if code != 2 {
		t.Fatalf("unknown command: exit code %d, want 2", code)
	}
	if !strings.Contains(stderr, `bwsched: error: unknown command "no-such-command"`) {
		t.Fatalf("unknown-command stderr: %q", stderr)
	}

	if _, code := captureStderr(t, func() int { return run(nil) }); code != 2 {
		t.Fatalf("no args: exit code %d, want 2", code)
	}

	// A missing file is an environment error, still structured.
	stderr, code = captureStderr(t, func() int {
		return run([]string{"verify", "-f", filepath.Join(t.TempDir(), "absent.txt")})
	})
	if code != 1 || !strings.HasPrefix(stderr, "bwsched: error: ") {
		t.Fatalf("missing file: code %d, stderr %q", code, stderr)
	}
}

// chromeTraceDoc mirrors the exported Chrome trace-event JSON.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Tid  int            `json:"tid"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestCmdObs runs the full observability pipeline on the paper's 12-node
// platform and cross-checks the exports against an independent solve.
func TestCmdObs(t *testing.T) {
	f := platformFile(t)
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.prom")
	traceOut := filepath.Join(dir, "t.json")
	logOut := filepath.Join(dir, "e.jsonl")

	out := capture(t, func() error {
		return cmdObs([]string{"-f", f, "-periods", "2",
			"-metrics", metrics, "-trace-out", traceOut, "-log-out", logOut})
	})
	if !strings.Contains(out, "throughput:  10/9") {
		t.Fatalf("summary missing throughput:\n%s", out)
	}

	// Independent ground truth.
	res := bwc.Solve(bwc.PaperExampleTree())
	dres, err := bwc.SolveDistributed(bwc.PaperExampleTree())
	if err != nil {
		t.Fatal(err)
	}

	// Prometheus export: the E9 counters must match the protocol result.
	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"bwc_protocol_messages_total 16",
		"bwc_visited_nodes 8",
		`bwc_node_buffer_tasks{node="P0"}`,
		`bwc_node_buffer_max_tasks{node="P1"}`,
	} {
		if !strings.Contains(string(prom), frag) {
			t.Errorf("metrics missing %q:\n%s", frag, prom)
		}
	}
	if dres.Messages != 16 || dres.VisitedCount != 8 || 2*dres.VisitedCount != dres.Messages {
		t.Fatalf("ground truth drifted: %d messages, %d visited", dres.Messages, dres.VisitedCount)
	}

	// Chrome trace: valid JSON, one proto span per visited node, and
	// S/C/R tracks for nodes the schedule uses.
	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	tracks := map[string]bool{}
	protoTx := 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.Args["name"].(string)] = true
			}
		case "X":
			if ev.Dur < 0 {
				t.Fatalf("negative duration on %q", ev.Name)
			}
		}
	}
	if !tracks["proto"] {
		t.Fatal("trace has no proto track")
	}
	for _, want := range []string{"P0/C", "P0/S", "P1/C", "P1/R", "des"} {
		if !tracks[want] {
			t.Errorf("trace missing track %q (have %v)", want, tracks)
		}
	}
	// Count proto transaction spans by re-walking the events (they all
	// live on the proto track's tid).
	protoTid := -1
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "proto" {
			protoTid = ev.Tid
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Tid == protoTid {
			protoTx++
		}
	}
	if protoTx != res.VisitedCount {
		t.Errorf("%d proto spans, want one per visited node (%d)", protoTx, res.VisitedCount)
	}

	// JSONL event log: every line parses; the negotiate event is there.
	lines := strings.Split(strings.TrimSpace(string(mustRead(t, logOut))), "\n")
	sawNegotiate := false
	for _, ln := range lines {
		var ev struct {
			Name  string `json:"name"`
			Attrs []struct{ Key, Value string }
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if ev.Name == "negotiate" {
			sawNegotiate = true
		}
	}
	if !sawNegotiate {
		t.Error("event log missing the negotiate event")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCmdObsMetricsStdout: "-metrics -" streams to stdout.
func TestCmdObsMetricsStdout(t *testing.T) {
	f := platformFile(t)
	out := capture(t, func() error {
		return cmdObs([]string{"-f", f, "-periods", "1", "-metrics", "-"})
	})
	if !strings.Contains(out, "# TYPE bwc_protocol_messages_total counter") {
		t.Fatalf("stdout metrics missing exposition header:\n%s", out)
	}
}

// TestCmdExecuteWithMetrics exercises the live endpoint flag end to end.
func TestCmdExecuteWithMetrics(t *testing.T) {
	f := platformFile(t)
	out := capture(t, func() error {
		return cmdExecute([]string{"-f", f, "-n", "10", "-scale", "50us", "-metrics", "127.0.0.1:0"})
	})
	if !strings.Contains(out, "metrics:  http://127.0.0.1:") {
		t.Fatalf("no live endpoint line:\n%s", out)
	}
	if !strings.Contains(out, "executed 10 tasks") {
		t.Fatalf("run did not complete:\n%s", out)
	}
}

package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"bwc"
	"bwc/internal/perf"
)

// benchArgs returns fast bench-subcommand arguments: one cheap bench,
// a tiny benchtime, progress suppressed.
func benchArgs(extra ...string) []string {
	return append([]string{"-run", "^RatArith$", "-benchtime", "5ms", "-quiet"}, extra...)
}

func TestCmdBenchWritesTrajectory(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	stdout := capture(t, func() error {
		return cmdBench(benchArgs("-label", "test", "-out", out))
	})
	if !strings.Contains(stdout, "trajectory: "+out) {
		t.Errorf("output missing the trajectory path:\n%s", stdout)
	}
	tr, err := perf.ParseFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Label != "test" {
		t.Errorf("label %q", tr.Label)
	}
	r, ok := tr.Result("RatArith")
	if !ok || r.N == 0 || r.NsPerOp <= 0 {
		t.Fatalf("RatArith result %+v", r)
	}
	if tr.Env.GoVersion == "" || tr.Env.GOMAXPROCS == 0 {
		t.Fatalf("env fingerprint empty: %+v", tr.Env)
	}
}

func TestCmdBenchProfileCapture(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "profiles")
	capture(t, func() error { return cmdBench(benchArgs("-profile", dir)) })
	for _, f := range []string{"RatArith.cpu.pprof", "RatArith.heap.pprof"} {
		if m, err := filepath.Glob(filepath.Join(dir, f)); err != nil || len(m) != 1 {
			t.Errorf("profile %s missing (%v, %v)", f, m, err)
		}
	}
}

// TestCmdBenchCompareGate seeds a deterministic regression — the
// baseline claims SessionSolveCold used 10 allocs/op, far below what it
// actually takes — and checks the full run() path returns exit code 8.
// Allocation counts are machine-independent, so this cannot flake on a
// noisy runner. An honest baseline recorded moments before must pass.
func TestCmdBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	args := []string{"-run", "^SessionSolveCold$", "-benchtime", "5ms", "-quiet"}
	capture(t, func() error { return cmdBench(append(args, "-out", base)) })

	if code := run(append([]string{"bench"}, append(args, "-compare", base)...)); code != 0 {
		t.Fatalf("honest baseline comparison exited %d, want 0", code)
	}

	tr, err := perf.ParseFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Results[0].AllocsPerOp <= 12 {
		t.Fatalf("fixture assumption broken: cold solve takes %d allocs/op", tr.Results[0].AllocsPerOp)
	}
	tr.Results[0].AllocsPerOp = 10
	doctored := filepath.Join(dir, "BENCH_doctored.json")
	if err := tr.WriteFile(doctored); err != nil {
		t.Fatal(err)
	}
	if code := run(append([]string{"bench"}, append(args, "-compare", doctored)...)); code != 8 {
		t.Fatalf("seeded regression exited %d, want 8", code)
	}
}

func TestCmdBenchList(t *testing.T) {
	out := capture(t, func() error { return cmdBench([]string{"-list"}) })
	for _, name := range []string{"EngineLoop", "ObsEnabled", "DistributedSolve"} {
		if !strings.Contains(out, name) {
			t.Errorf("bench -list missing %q:\n%s", name, out)
		}
	}
}

func TestCmdBenchErrors(t *testing.T) {
	if err := cmdBench(benchArgs("-compare", filepath.Join(t.TempDir(), "missing.json"))); err == nil {
		t.Error("missing baseline file not reported")
	}
	if err := cmdBench([]string{"-run", "matches-nothing", "-benchtime", "1ms", "-quiet"}); err == nil {
		t.Error("empty selection not reported")
	}
}

// TestExitCodes pins the sentinel-to-exit-code table the README
// documents, including this PR's perf-regression code 8.
func TestExitCodes(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want int
	}{
		{bwc.ErrNotATree, 4},
		{bwc.ErrInfeasible, 5},
		{bwc.ErrScheduleStale, 6},
		{bwc.ErrAdaptTimeout, 7},
		{bwc.ErrPerfRegression, 8},
		{bwc.ErrChurnCollapse, 9},
		{bwc.ErrDaemonUnreachable, 10},
		{fmt.Errorf("wrapped: %w", bwc.ErrPerfRegression), 8},
		{fmt.Errorf("wrapped: %w", bwc.ErrDaemonUnreachable), 10},
		{fmt.Errorf("anything else"), 1},
	} {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

package main

// The churn subcommand drives the churn-hardened closed loop: generate
// a seeded stochastic fleet-churn script (joins, leaves, drift,
// fail-stop crashes), re-solve incrementally along the affected spine
// on every detected drift, and hot-swap only the changed node
// schedules. The output pins the churn-smoke CI contract: a run that
// self-stabilizes prints "stabilized:" and exits 0; a collapse —
// retained throughput below the retention floor after the retry
// budget — exits 9 (ErrChurnCollapse).

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bwc"
)

func cmdChurn(args []string) error {
	fs := flag.NewFlagSet("churn", flag.ExitOnError)
	file := fs.String("f", "-", "platform file ('-' = stdin)")
	seed := fs.Int64("seed", 1, "churn-script seed; the same seed replays a byte-identical run")
	rate := fs.Float64("rate", 4, "mean churn events per 100 time units at peak intensity")
	duration := fs.String("duration", "600", "run horizon: the root stops releasing at this time")
	floor := fs.Float64("floor", 0.5, "retention floor: collapse below this fraction of baseline throughput")
	shape := fs.Float64("shape", 0, "Pareto shape of the inter-arrival gaps (0 = default 1.5)")
	crashFrac := fs.Float64("crash-frac", 0, "max fraction of workers the script may crash (0 = default 0.15, negative = none)")
	flapK := fs.Int("flap", 0, "quarantine a node after this many perturbations in the flap window (0 = default 3)")
	retries := fs.Int("retries", 0, "re-solve retry budget before declaring collapse (0 = default 3)")
	var faultSpecs multiFlag
	fs.Var(&faultSpecs, "fault", "extra scripted fault as at:kind:node[:value]; repeatable")
	asJSON := fs.Bool("json", false, "print the post-churn health report as JSON")
	showLog := fs.Bool("log", false, "print the deterministic controller event log")
	fs.Parse(args)
	t, err := loadPlatform(*file)
	if err != nil {
		return err
	}
	stopAt, err := bwc.ParseRat(*duration)
	if err != nil {
		return err
	}
	var scripted []bwc.Fault
	for _, spec := range faultSpecs {
		f, err := parseFault(spec)
		if err != nil {
			return err
		}
		scripted = append(scripted, f)
	}

	res := sess.Solve(t)
	cfg := bwc.ChurnConfig{
		Seed:          *seed,
		Rate:          *rate,
		ParetoShape:   *shape,
		CrashFraction: *crashFrac,
	}
	opts := []bwc.Option{
		bwc.WithChurn(cfg),
		bwc.WithStop(stopAt),
		bwc.WithRetentionFloor(*floor),
	}
	if len(scripted) > 0 {
		opts = append(opts, bwc.WithFaults(scripted...))
	}
	if *flapK > 0 {
		opts = append(opts, bwc.WithFlapQuarantine(*flapK, bwc.RatInt(0)))
	}
	if *retries > 0 {
		opts = append(opts, bwc.WithResolveRetries(*retries, bwc.RatInt(0)))
	}

	fmt.Printf("platform:  %d nodes, baseline steady state %s tasks/unit\n", t.Len(), res.Throughput)
	fmt.Printf("churn:     seed %d, rate %.3g/100u, horizon %s, retention floor %.0f%%\n",
		*seed, *rate, stopAt, 100**floor)

	rep, runErr := sess.SimulateChurn(t, opts...)
	if rep == nil {
		return runErr
	}

	fmt.Printf("script:    %d churn events\n", len(rep.Faults))
	for i, ad := range rep.Adaptations {
		spine := ""
		if i < len(rep.ReSolves) {
			rs := rep.ReSolves[i]
			spine = fmt.Sprintf(", spine %d recomputed / %d reused", rs.Recomputed, rs.Reused)
			if rs.Pruned > 0 {
				spine += fmt.Sprintf(", %d pruned", rs.Pruned)
			}
			spine += fmt.Sprintf(", delta %d node(s)", rs.Delta)
		}
		fmt.Printf("cycle #%d:  drift t=%s, swap t=%s, throughput %s%s\n",
			i+1, ad.Drift.At, ad.SwapAt, ad.Throughput, spine)
	}
	if len(rep.Adaptations) == 0 {
		fmt.Printf("no drift detected over [0, %s]\n", rep.Stop)
	}
	if len(rep.Quarantined) > 0 {
		fmt.Printf("quarantined: %s\n", strings.Join(rep.Quarantined, ", "))
	}
	if *showLog {
		for _, line := range rep.Log {
			fmt.Printf("  log: %s\n", line)
		}
	}
	fmt.Printf("retention: %s retained of oracle %s (%.1f%%; baseline %s)\n",
		rep.Final, rep.Oracle, 100*rep.Retention, rep.Baseline)
	if rep.Post != nil {
		fmt.Printf("post-churn: %s (verified to t=%s)\n", verdictLine(rep.Post), rep.Stop)
		if *asJSON {
			if err := rep.Post.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else if err := rep.Post.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if runErr != nil {
		return runErr
	}
	if !rep.Healed {
		return fmt.Errorf("churn: final regime failed %d conformance check(s)", rep.Post.Failed)
	}
	fmt.Printf("stabilized: the run re-converged under churn (%d adaptation(s))\n", len(rep.Adaptations))
	return nil
}

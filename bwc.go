// Package bwc is a Go implementation of bandwidth-centric steady-state
// scheduling of independent-task (Master-Worker) applications on
// heterogeneous tree platforms, reproducing
//
//	Cyril Banino, "A Distributed Procedure for Bandwidth-Centric
//	Scheduling of Independent-Task Applications", IPPS/IPDPS 2005.
//
// The package is a facade over the internal implementation packages; it is
// the API the examples, the CLI and downstream users program against.
//
// # Model
//
// A platform is a node-weighted, edge-weighted tree: node P_i takes w_i
// time units to compute one task (w = +inf models switches), and the edge
// from its parent takes c_i time units to transfer one task. Nodes follow
// the single-port, full-overlap model: simultaneous receive, compute, and
// send — but at most one incoming and one outgoing transfer at a time. All
// quantities are exact rationals.
//
// # Typical use
//
//	platform := bwc.NewBuilder().
//	    Root("master", bwc.Rat(9, 1)).
//	    Child("master", "w1", bwc.Rat(1, 2), bwc.Rat(8, 1)).
//	    MustBuild()
//
//	res := bwc.Solve(platform)              // optimal steady-state rate
//	s, _ := bwc.BuildSchedule(res)          // per-node event-driven schedules
//	run, _ := bwc.Simulate(s, bwc.WithPeriods(4))
//
// Every entry point shares one functional-options vocabulary (see
// Option): bwc.WithObserver instruments any call, bwc.WithStop /
// bwc.WithPeriods / bwc.WithTasks set horizons and batch sizes,
// bwc.WithTimeout / bwc.WithRetry make the distributed protocol
// resilient to unresponsive nodes, and bwc.WithFaults drives the
// adaptive runtime (SimulateAdaptive / ExecuteAdaptive).
//
// Solve runs the paper's BW-First transaction procedure; SolveDistributed
// runs the same procedure with one goroutine per node exchanging single
// numbers over channels. BottomUp and LPThroughput provide two independent
// oracles for the same optimum (Beaumont et al.'s reduction and an exact
// rational simplex on the steady-state LP).
package bwc

import (
	"fmt"
	"io"
	"math/rand"

	"bwc/internal/bottomup"
	"bwc/internal/bwfirst"
	"bwc/internal/gantt"
	"bwc/internal/graph"
	"bwc/internal/graphlp"
	"bwc/internal/infinite"
	"bwc/internal/kreaseck"
	"bwc/internal/lp"
	"bwc/internal/makespan"
	"bwc/internal/obs"
	"bwc/internal/obs/analyze"
	"bwc/internal/paperexample"
	"bwc/internal/proto"
	"bwc/internal/rat"
	"bwc/internal/resultflow"
	"bwc/internal/runtime"
	"bwc/internal/sched"
	"bwc/internal/sensitivity"
	"bwc/internal/sim"
	"bwc/internal/trace"
	"bwc/internal/tree"
	"bwc/internal/treegen"
	"bwc/internal/treeio"
)

// Core model types.
type (
	// Rational is an immutable exact rational number.
	Rational = rat.R
	// Tree is an immutable heterogeneous platform tree.
	Tree = tree.Tree
	// NodeID identifies a node within one Tree.
	NodeID = tree.NodeID
	// Builder constructs platform trees.
	Builder = tree.Builder
)

// Solver results and schedules.
type (
	// Result is the outcome of the BW-First procedure.
	Result = bwfirst.Result
	// Transaction is one proposal/acknowledgment exchange.
	Transaction = bwfirst.Transaction
	// DistributedResult is the outcome of the goroutine-per-node run.
	DistributedResult = proto.Result
	// BottomUpResult is the outcome of the baseline reduction.
	BottomUpResult = bottomup.Result
	// Schedule bundles the per-node event-driven schedules.
	Schedule = sched.Schedule
	// NodeSchedule is one node's compact schedule description.
	NodeSchedule = sched.NodeSchedule
	// ScheduleOptions configures schedule reconstruction.
	ScheduleOptions = sched.Options
)

// Simulation types.
type (
	// SimOptions configures a simulated run of a schedule.
	SimOptions = sim.Options
	// Run is a completed simulation with trace and statistics.
	Run = sim.Run
	// RunStats summarizes a simulation.
	RunStats = sim.Stats
	// Trace is the recorded activity of a run.
	Trace = trace.Trace
	// DemandOptions configures the demand-driven comparator protocol.
	DemandOptions = kreaseck.Options
	// DynOptions configures a dynamic (multi-phase) simulation.
	DynOptions = sim.DynOptions
	// DynPhase activates a schedule at a point in virtual time.
	DynPhase = sim.Phase
	// DynPhysics swaps the platform weights at a point in virtual time.
	DynPhysics = sim.PhysicsChange
	// DynRun is the result of a dynamic simulation.
	DynRun = sim.DynRun
	// ExecuteConfig configures a real goroutine-backed execution of a
	// schedule (wall-clock, not simulated).
	ExecuteConfig = runtime.Config
	// ExecuteReport summarizes a real execution.
	ExecuteReport = runtime.Report
	// ResourceUpgrade reports the throughput gain of speeding up one
	// resource.
	ResourceUpgrade = sensitivity.Upgrade
	// DemandRun is a completed demand-driven simulation.
	DemandRun = kreaseck.Run
	// ResultPlatform is a platform whose links also return results.
	ResultPlatform = resultflow.Platform
	// InfiniteSpec describes a uniform infinite k-ary tree (Section 5's
	// infinite-network analysis).
	InfiniteSpec = infinite.Spec
	// InfiniteCyclic describes an infinite tree whose levels repeat a
	// heterogeneous cycle.
	InfiniteCyclic = infinite.Cyclic
	// InfiniteLevel is one level of an InfiniteCyclic.
	InfiniteLevel = infinite.Level
	// MakespanResult reports a finite-batch run against the steady-state
	// lower bound.
	MakespanResult = makespan.Result
	// Graph is a general platform graph (Related Work [2]/[13]) from
	// which tree overlays are extracted.
	Graph = graph.Graph
	// GraphBuilder assembles platform graphs.
	GraphBuilder = graph.Builder
	// OverlayKind selects a spanning-tree extraction heuristic.
	OverlayKind = graph.OverlayKind
)

// Overlay heuristics for Graph.SpanningTree.
const (
	OverlayBFS    = graph.OverlayBFS
	OverlayDFS    = graph.OverlayDFS
	OverlayGreedy = graph.OverlayGreedy
)

// None marks "no node" (e.g. the root's parent).
const None = tree.None

// Rat returns the exact rational n/d.
func Rat(n, d int64) Rational { return rat.New(n, d) }

// RatInt returns the exact rational v.
func RatInt(v int64) Rational { return rat.FromInt(v) }

// ParseRat parses "3", "3/4" or "0.75".
func ParseRat(s string) (Rational, error) { return rat.Parse(s) }

// NewBuilder returns an empty platform builder.
func NewBuilder() *Builder { return tree.NewBuilder() }

// Observability.

// Observer collects metrics, spans and events from instrumented runs. A
// nil *Observer disables all instrumentation at the cost of one pointer
// check per site; attach one with bwc.WithObserver(NewObserver()) on any
// entry point, then export with WriteChromeTrace (Perfetto-loadable),
// WritePrometheus (text exposition) or AttachJSONL (streaming event
// log).
type Observer = obs.Scope

// ObserverEvent is one emitted event on an Observer's bus.
type ObserverEvent = obs.Event

// NewObserver returns an enabled Observer.
func NewObserver() *Observer { return obs.New() }

// MetricsServer is a live HTTP endpoint exposing an Observer's metrics at
// /metrics (Prometheus text) and the Go profiles under /debug/pprof/.
type MetricsServer = runtime.MetricsServer

// ServeObserverMetrics starts a MetricsServer for o on addr (":0" picks a
// free port; the bound address is in the returned server's Addr).
func ServeObserverMetrics(o *Observer, addr string) (*MetricsServer, error) {
	return runtime.ServeMetrics(o, addr)
}

// ServeObserverHealth is ServeObserverMetrics plus the live conformance
// endpoints: a self-contained HTML dashboard at / (per-node progress vs
// the schedule's α shares, buffer occupancy vs χ) and a machine-readable
// /healthz that turns the same metrics into verdicts (HTTP 503 when any
// fail). s supplies the expected values; nil serves metrics only.
func ServeObserverHealth(o *Observer, s *Schedule, addr string) (*MetricsServer, error) {
	return runtime.ServeHealth(o, s, addr)
}

// Conformance analysis: turning a run's telemetry into verdicts against
// the paper's theory (see internal/obs/analyze).
type (
	// HealthReport is the structured outcome of analyzing one run.
	HealthReport = analyze.HealthReport
	// HealthCheck is one conformance verdict with its evidence.
	HealthCheck = analyze.Check
	// HealthVerdict is PASS, FAIL or SKIP.
	HealthVerdict = analyze.Verdict
	// AnalyzeOptions tunes the conformance thresholds and supplies the
	// schedule expected values are derived from.
	AnalyzeOptions = analyze.Options
	// RunEvidence is the raw material of an analysis (spans + metrics).
	RunEvidence = analyze.Evidence
)

// Verdict values.
const (
	HealthPass = analyze.Pass
	HealthFail = analyze.Fail
	HealthSkip = analyze.Skip
)

// AnalyzeRun checks an observed simulation against the paper's theory:
// per-node throughput vs the solver's η, single-port discipline, link
// utilization vs Lemma 1, buffer peaks vs Proposition 3's χ, steady-state
// onset vs Proposition 4, start-up useful work, and backlogged idleness.
// The run must have been simulated with an Observer attached; the
// schedule and stop time are taken from the run unless overridden
// (WithAnalyzeOptions, WithStop).
func AnalyzeRun(run *Run, opts ...Option) *HealthReport {
	o := buildCfg(opts).buildAnalyzeOptions()
	if o.Schedule == nil {
		o.Schedule = run.Schedule
	}
	if o.Stop.IsZero() {
		o.Stop = run.Stats.StopAt
	}
	return analyze.Analyze(analyze.FromScope(run.Obs), o)
}

// AnalyzeDynamicRun checks an observed dynamic simulation against one
// schedule's expectations — pass the schedule the run was *supposed* to
// conform to (typically the last phase's). A run whose physics degraded
// under a stale schedule fails the throughput and buffer checks; that is
// the detector the Section 5 adaptation loop needs.
func AnalyzeDynamicRun(run *DynRun, s *Schedule, opts ...Option) *HealthReport {
	o := buildCfg(opts).buildAnalyzeOptions()
	if o.Schedule == nil {
		o.Schedule = s
	}
	return analyze.Analyze(analyze.FromScope(run.Obs), o)
}

// AnalyzeObserver analyzes whatever evidence a live Observer holds (e.g.
// one attached to Execute). Wall-clock runs carry link spans and
// counters, so the exact-timing checks degrade to SKIP.
func AnalyzeObserver(o *Observer, opts ...Option) *HealthReport {
	return analyze.Analyze(analyze.FromScope(o), buildCfg(opts).buildAnalyzeOptions())
}

// AnalyzeTrace analyzes offline evidence: a Chrome trace (WriteChromeTrace)
// or span-tagged JSONL (WriteSpansJSONL / AttachJSONL) previously written
// by an exporter. Supply a schedule via WithAnalyzeOptions to enable the
// checks that need expected values.
func AnalyzeTrace(r io.Reader, opts ...Option) (*HealthReport, error) {
	ev, err := analyze.ReadEvidence(r)
	if err != nil {
		return nil, err
	}
	return analyze.Analyze(ev, buildCfg(opts).buildAnalyzeOptions()), nil
}

// Solve computes the optimal steady-state throughput and the per-node
// activity variables with the BW-First procedure (sequential reference
// implementation). WithObserver records one span per BW-First
// transaction and the solver's counters.
func Solve(t *Tree, opts ...Option) *Result {
	return bwfirst.SolveObserved(t, buildCfg(opts).obs)
}

// SolveBatch scores many platforms concurrently (results in input order) —
// the bulk evaluation that makes Section 5's topological studies cheap.
// workers <= 0 uses GOMAXPROCS.
func SolveBatch(trees []*Tree, workers int) []*Result { return bwfirst.SolveBatch(trees, workers) }

// SolveDistributed runs BW-First as a distributed protocol: one goroutine
// per node, single-number messages over channels. WithObserver records
// one span per transaction plus the protocol message counters
// (bwc_protocol_messages_total, bwc_visited_nodes).
//
// With any of WithTimeout / WithBackoff / WithRetry / WithUnresponsive
// the wave runs in resilient mode: every proposal carries a timeout, a
// child that never acknowledges is retried with linear backoff and then
// pruned — its whole subtree excluded from the steady state and reported
// in the result's Pruned list — instead of hanging the negotiation. An
// unresponsive root fails with ErrAdaptTimeout. Without those options the
// wave is the plain in-memory protocol and the error is always nil.
func SolveDistributed(t *Tree, opts ...Option) (*DistributedResult, error) {
	cfg := buildCfg(opts)
	if !cfg.resilient {
		return proto.SolveObserved(t, cfg.obs), nil
	}
	down := make([]tree.NodeID, 0, len(cfg.unresponsive))
	for _, name := range cfg.unresponsive {
		id, ok := t.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("bwc: unresponsive node %q is not in the platform", name)
		}
		down = append(down, id)
	}
	return proto.SolveResilientObserved(t, down, cfg.buildResilientOptions(), cfg.obs)
}

// ProtocolSession keeps one goroutine per node alive across negotiation
// rounds, enabling the Section 5 dynamic-adaptation pattern: the root
// re-initiates BW-First against re-measured link weights via Renegotiate
// without restarting node processes.
type ProtocolSession = proto.Session

// NewProtocolSession spawns the node goroutines for t. Close the session
// to release them.
func NewProtocolSession(t *Tree) *ProtocolSession { return proto.NewSession(t) }

// BottomUp computes the same optimum with the baseline bottom-up fork
// reduction of Beaumont et al., touching every node.
func BottomUp(t *Tree) *BottomUpResult { return bottomup.Solve(t) }

// LPThroughput computes the optimum a third way: as the exact solution of
// the steady-state linear program, together with witness compute rates.
func LPThroughput(t *Tree) (Rational, []Rational, error) { return lp.OptimalThroughput(t) }

// BuildSchedule reconstructs every node's asynchronous, event-driven local
// schedule (periods, ψ quantities, interleaved allocation pattern) from a
// BW-First result. WithScheduleOptions tunes the construction.
func BuildSchedule(res *Result, opts ...Option) (*Schedule, error) {
	return sched.Build(res, buildCfg(opts).schedOptions)
}

// MarshalDeployment encodes the active nodes' ψ quantities and consuming
// periods as JSON — the compact description each deployed node needs to
// derive its own pattern locally.
func MarshalDeployment(s *Schedule) ([]byte, error) { return s.MarshalDeployment() }

// UnmarshalDeployment rebuilds a schedule for platform t from a deployment
// document, recomputing every derived quantity locally.
func UnmarshalDeployment(t *Tree, data []byte, opts ...Option) (*Schedule, error) {
	return sched.UnmarshalDeployment(t, data, buildCfg(opts).schedOptions)
}

// QuantizeSchedule rounds the optimal rates down to denominators dividing
// den before building the schedule, bounding every node's periods by den
// at a throughput loss of at most (#nodes)/den — the practical answer to
// the paper's warning that exact periods "might be embarrassingly long".
// It returns the schedule and the quantized throughput.
func QuantizeSchedule(res *Result, den int64, opts ...Option) (*Schedule, Rational, error) {
	return sched.Quantize(res, den, buildCfg(opts).schedOptions)
}

// Simulate executes a schedule on the simulated platform under the
// single-port full-overlap model: paced root, event-driven nodes,
// start-up from empty buffers, wind-down after the horizon. Exactly one
// of WithStop / WithPeriods / WithTasks must set the horizon;
// WithObserver instruments the run and WithSimOptions seeds the rarer
// knobs (BurstRoot, MaxEvents).
func Simulate(s *Schedule, opts ...Option) (*Run, error) {
	return sim.Simulate(s, buildCfg(opts).buildSimOptions())
}

// SimulateDynamic runs a multi-phase simulation: the platform's physics
// and the deployed schedules may change at different moments, measuring
// the paper's open question about re-negotiation overhead (Section 5 /
// future work).
func SimulateDynamic(opt DynOptions) (*DynRun, error) { return sim.SimulateDynamic(opt) }

// Execute runs a batch as a real concurrent Master-Worker application:
// goroutines per node, channels as links, wall-clock pacing scaled by
// WithScale, and the WithWork function invoked per task. WithTasks sets
// the batch size.
func Execute(s *Schedule, opts ...Option) (*ExecuteReport, error) {
	return runtime.Execute(buildCfg(opts).buildExecConfig(s))
}

// SimulateDemandDriven runs the Kreaseck-style demand-driven comparator
// protocol on the same platform model.
func SimulateDemandDriven(t *Tree, opt DemandOptions) (*DemandRun, error) {
	return kreaseck.Simulate(t, opt)
}

// PlatformWithResultReturn returns a copy of t carrying per-link
// result-return times d (indexed by NodeID; the root entry must be
// zero). The returned tree is a first-class platform: Solve,
// BuildSchedule, Simulate, Execute, sessions and the wire formats all
// model the upward result flow natively (Section 9).
func PlatformWithResultReturn(t *Tree, d []Rational) (*Tree, error) {
	return t.WithReturnTimes(d)
}

// PlatformWithUniformResultReturn is PlatformWithResultReturn with the
// same d on every link.
func PlatformWithUniformResultReturn(t *Tree, d Rational) (*Tree, error) {
	return t.WithUniformReturnTime(d)
}

// FoldedThroughput is the Section 9 baseline: every link's return time
// folded into its forward time (c' = c + d) and the platform solved
// forward-only — what a scheduler that serializes the two flows on one
// port pair would achieve. The gap to the separate-flows throughput
// (Solve / Verify on the return platform itself) is the folded model's
// error.
func FoldedThroughput(t *Tree) (Rational, error) {
	folded := t
	for i := 0; i < t.Len(); i++ {
		id := NodeID(i)
		d := t.ReturnTime(id)
		if id == t.Root() || d.IsZero() {
			continue
		}
		var err error
		folded, err = folded.WithCommTime(id, t.CommTime(id).Add(d))
		if err != nil {
			return rat.Zero, err
		}
	}
	folded, err := folded.WithUniformReturnTime(rat.Zero)
	if err != nil {
		return rat.Zero, err
	}
	return bwfirst.Solve(folded).Throughput, nil
}

// WithResultReturn wraps a platform with per-link result-return times d
// (indexed by NodeID; the root entry is ignored) for the Section 9 LP
// analysis. The returned ResultPlatform is the LP cross-check view;
// PlatformWithResultReturn is the native pipeline entry point.
func WithResultReturn(t *Tree, d []Rational) (ResultPlatform, error) {
	return resultflow.NewPlatform(t, d)
}

// WithUniformResultReturn is WithResultReturn with the same d on every
// link.
func WithUniformResultReturn(t *Tree, d Rational) (ResultPlatform, error) {
	return resultflow.UniformResult(t, d)
}

// Platform I/O.

// ParsePlatform reads the line-oriented text format ("name parent comm
// proc", '-' for the root's parent/comm, "inf" for switches).
func ParsePlatform(r io.Reader) (*Tree, error) { return treeio.ParseText(r) }

// ParsePlatformString is ParsePlatform on a string.
func ParsePlatformString(s string) (*Tree, error) { return treeio.ParseTextString(s) }

// FormatPlatform renders a platform in the text format.
func FormatPlatform(t *Tree) string { return treeio.TextString(t) }

// PlatformJSON encodes a platform as nested JSON.
func PlatformJSON(t *Tree) ([]byte, error) { return treeio.MarshalJSON(t) }

// PlatformFromJSON decodes a nested JSON platform.
func PlatformFromJSON(data []byte) (*Tree, error) { return treeio.UnmarshalJSON(data) }

// DOT renders a platform as a Graphviz digraph; highlight (optional) marks
// nodes, e.g. the visited set of a Result.
func DOT(t *Tree, highlight func(NodeID) bool) string { return treeio.DOT(t, highlight) }

// DOTWithSchedule renders the platform annotated with the optimal steady
// state: α per node, "c / η" per edge.
func DOTWithSchedule(res *Result) string {
	return treeio.DOTWithRates(res.Tree,
		func(id NodeID) Rational { return res.Nodes[id].Alpha },
		func(id NodeID) Rational { return res.SendRate(id) })
}

// Rendering.

// GanttASCII renders a run's trace window as text, one character per step.
func GanttASCII(tr *Trace, from, to, step Rational) string {
	return gantt.ASCII(tr, from, to, step)
}

// GanttSVG renders a run's trace window as an SVG document.
func GanttSVG(tr *Trace, from, to Rational, pxPerUnit float64) string {
	return gantt.SVG(tr, from, to, pxPerUnit)
}

// GanttASCIIWithBuffers adds per-node buffered-task rows to the ASCII
// Gantt (digits 0-9, '+' for ten or more).
func GanttASCIIWithBuffers(tr *Trace, from, to, step Rational) string {
	return gantt.ASCIIWithBuffers(tr, from, to, step)
}

// Generators.

// PlatformKind selects a synthetic platform family.
type PlatformKind = treegen.Kind

// Platform families for GeneratePlatform.
const (
	Uniform          = treegen.Uniform
	BandwidthLimited = treegen.BandwidthLimited
	ComputeLimited   = treegen.ComputeLimited
	DeepChain        = treegen.DeepChain
	WideStar         = treegen.WideStar
	SwitchHeavy      = treegen.SwitchHeavy
	SETI             = treegen.SETI
)

// GeneratePlatform builds a deterministic synthetic platform of n nodes.
func GeneratePlatform(kind PlatformKind, n int, seed int64) *Tree {
	return treegen.Generate(kind, n, seed)
}

// GenerateBandwidthSeverity builds a platform whose link times are scaled
// by severity over a compute-balanced baseline (the E5 bottleneck sweep).
func GenerateBandwidthSeverity(n int, severity, seed int64) *Tree {
	return treegen.BandwidthSeverity(n, severity, seed)
}

// PaperExampleTree returns the 12-node Section 8 platform: throughput
// 10/9, steady-state period 360, rootless period 40, and nodes P5, P9,
// P10, P11 unused by the optimal schedule.
func PaperExampleTree() *Tree { return paperexample.Tree() }

// Verify cross-checks the three throughput oracles (BW-First, bottom-up
// reduction, exact LP) on t and the internal invariants of the BW-First
// result; it returns the agreed throughput. WithObserver records the
// BW-First and protocol runs it performs.
//
// On a result-return platform (Section 9) the bottom-up reduction and
// the distributed protocol are forward-only oracles, so Verify instead
// checks the generalized BW-First result's port invariants and its
// feasibility against the exact separate-flows LP (greedy ≤ LP must
// hold — the heuristic is feasible but not proven optimal with
// returns), and returns the LP optimum.
func Verify(t *Tree, opts ...Option) (Rational, error) {
	sc := buildCfg(opts).obs
	res := bwfirst.SolveObserved(t, sc)
	if err := res.CheckInvariants(); err != nil {
		return rat.Zero, err
	}
	if t.HasResultReturn() {
		opt, _, err := lp.OptimalThroughput(t)
		if err != nil {
			return rat.Zero, err
		}
		if opt.Less(res.Throughput) {
			return rat.Zero, errMismatch("LP (greedy above the exact optimum)", res.Throughput, opt)
		}
		return opt, nil
	}
	bu := bottomup.Solve(t)
	if !bu.Throughput.Equal(res.Throughput) {
		return rat.Zero, errMismatch("bottom-up", bu.Throughput, res.Throughput)
	}
	opt, _, err := lp.OptimalThroughput(t)
	if err != nil {
		return rat.Zero, err
	}
	if !opt.Equal(res.Throughput) {
		return rat.Zero, errMismatch("LP", opt, res.Throughput)
	}
	dist := proto.SolveObserved(t, sc)
	if !dist.Throughput.Equal(res.Throughput) {
		return rat.Zero, errMismatch("distributed protocol", dist.Throughput, res.Throughput)
	}
	return res.Throughput, nil
}

type mismatchError struct {
	oracle string
	got    Rational
	want   Rational
}

func (e mismatchError) Error() string {
	return "bwc: " + e.oracle + " disagrees: " + e.got.String() + " vs BW-First " + e.want.String()
}

func errMismatch(oracle string, got, want Rational) error {
	return mismatchError{oracle: oracle, got: got, want: want}
}

// Infinite-tree analysis (Section 5 / Bataineh & Robertazzi [3]).

// InfiniteRate returns the exact equivalent computing rate of the uniform
// infinite k-ary tree: 1/w + 1/c.
func InfiniteRate(s InfiniteSpec) (Rational, error) { return s.Rate() }

// TruncatedRate returns the equivalent rate of the spec's depth-d
// truncation; it increases monotonically to InfiniteRate with d.
func TruncatedRate(s InfiniteSpec, depth int) (Rational, error) { return s.TruncatedRate(depth) }

// CyclicInfiniteRate returns the exact rate of an infinite tree with a
// repeating heterogeneous level cycle (fixed point of the composed
// Proposition 1 reductions).
func CyclicInfiniteRate(c InfiniteCyclic) (Rational, error) { return c.Rate(0) }

// Finite-batch makespan (the Section 2 heuristic claim).

// BatchMakespan schedules a finite batch of n tasks with the event-driven
// schedule and reports the makespan against the steady-state lower bound
// n/ρ*.
func BatchMakespan(t *Tree, n int) (MakespanResult, error) { return makespan.EventDriven(t, n) }

// BatchMakespanDemandDriven runs the same batch under the demand-driven
// comparator protocol.
func BatchMakespanDemandDriven(t *Tree, n int) (MakespanResult, error) {
	return makespan.DemandDriven(t, n)
}

// MakespanLowerBound returns n/ρ*: no schedule can beat it.
func MakespanLowerBound(t *Tree, n int) (Rational, error) { return makespan.Bound(t, n) }

// AnalyzeUpgrades re-solves the platform once per resource sped up by the
// given factor and returns the exact throughput gains, best first — the
// operational answer to "what should we upgrade?".
func AnalyzeUpgrades(t *Tree, speedup Rational) ([]ResourceUpgrade, error) {
	return sensitivity.Analyze(t, speedup)
}

// General platform graphs (Related Work [2]/[13]).

// NewGraphBuilder returns an empty platform-graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// RandomGraph generates a seeded random connected platform graph with
// extra cross links beyond the spanning backbone.
func RandomGraph(seed int64, n, extraEdges int, switchProb float64) *Graph {
	return graph.RandomConnected(RandSource(seed), n, extraEdges, switchProb)
}

// GraphThroughput computes the exact steady-state optimum of a general
// platform graph via the LP of Banino et al. [2] — the routing-free upper
// bound on any tree overlay.
func GraphThroughput(g *Graph) (Rational, error) { return graphlp.OptimalThroughput(g) }

// ParseGraph reads the line-oriented graph format ("node", "switch",
// "link", "master" directives).
func ParseGraph(r io.Reader) (*Graph, error) { return graph.ParseText(r) }

// ParseGraphString is ParseGraph on a string.
func ParseGraphString(s string) (*Graph, error) { return graph.ParseTextString(s) }

// FormatGraph renders a graph in the text format.
func FormatGraph(g *Graph) string { return graph.TextString(g) }

// GraphDOT renders a graph as an undirected Graphviz graph.
func GraphDOT(g *Graph) string { return graph.DOT(g) }

// RandSource returns a deterministic *rand.Rand for examples and
// experiments that need auxiliary randomness.
func RandSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

package bwc

import (
	"time"

	"bwc/internal/adapt"
	"bwc/internal/proto"
)

// Option configures one facade call. Every entry point that used to take
// its own trailing struct or optional observer now shares this single
// functional-options vocabulary:
//
//	res := bwc.Solve(t, bwc.WithObserver(ob))
//	run, err := bwc.Simulate(s, bwc.WithStop(bwc.RatInt(115)))
//	rep, err := bwc.Execute(s, bwc.WithTasks(100), bwc.WithScale(time.Millisecond))
//	adaptRep, err := bwc.SimulateAdaptive(s,
//	    bwc.WithFaults(bwc.DegradeLink(bwc.RatInt(120), "P1", bwc.RatInt(4))),
//	    bwc.WithStop(bwc.RatInt(400)))
//
// Options that do not apply to a call are ignored, so shared helpers can
// pass one option slice to several entry points. The struct-typed escape
// hatches (WithSimOptions, WithScheduleOptions, WithAnalyzeOptions,
// WithExecuteConfig, WithAdaptOptions) seed the full configuration for
// the rare fields without a dedicated option; dedicated options applied
// after them override the seeded fields.
type Option func(*callCfg)

// callCfg accumulates the option state for one call; each entry point
// materializes only the slice of it that applies.
type callCfg struct {
	obs *Observer

	// Resilient negotiation (SolveDistributed, SimulateAdaptive,
	// ExecuteAdaptive).
	timeout      time.Duration
	backoff      time.Duration
	retries      int
	unresponsive []string
	resilient    bool

	// Horizon and batch size (Simulate, Execute, SimulateAdaptive,
	// ExecuteAdaptive).
	stop       Rational
	periods    int
	tasks      int
	skip       bool
	simOptions SimOptions
	simSet     bool

	// Schedule construction (BuildSchedule, QuantizeSchedule,
	// UnmarshalDeployment, and re-solves inside the adaptive loop).
	schedOptions ScheduleOptions

	// Wall-clock execution (Execute, ExecuteAdaptive).
	scale      time.Duration
	work       func(NodeID, int)
	execConfig ExecuteConfig
	execSet    bool

	// Conformance analysis (AnalyzeRun and friends).
	anOptions AnalyzeOptions
	anSet     bool

	// Adaptive runtime (SimulateAdaptive, ExecuteAdaptive, DetectDrift).
	adaptOptions AdaptOptions
	faults       []Fault
	detectOnly   bool

	// Churn-hardened runtime (SimulateChurn).
	churn          ChurnConfig
	retentionFloor float64
	flapThreshold  int
	flapWindow     Rational
	resolveRetries int
	retryBackoff   Rational
}

func buildCfg(opts []Option) callCfg {
	var c callCfg
	for _, o := range opts {
		if o != nil {
			o(&c)
		}
	}
	return c
}

// WithObserver attaches an Observer to the call: solver and protocol
// runs record one span per transaction, simulations and executions
// record per-node activity, and the adaptive controller emits its
// fault/drift/swap events on it.
func WithObserver(o *Observer) Option {
	return func(c *callCfg) { c.obs = o }
}

// WithTimeout sets the per-transaction timeout of a resilient
// negotiation wave: a proposal unacknowledged for this long is retried
// (WithRetry) with linear backoff (WithBackoff). It applies to
// SolveDistributed and to the re-solve waves inside SimulateAdaptive /
// ExecuteAdaptive. Zero keeps the default (50ms).
func WithTimeout(d time.Duration) Option {
	return func(c *callCfg) { c.timeout = d; c.resilient = true }
}

// WithBackoff sets the linear backoff step added per retry of a
// resilient negotiation transaction. Zero keeps the default (the
// timeout).
func WithBackoff(d time.Duration) Option {
	return func(c *callCfg) { c.backoff = d; c.resilient = true }
}

// WithRetry sets how many times a timed-out negotiation transaction is
// retried before the unresponsive child is pruned from the wave (its
// whole subtree is given up, Section 5's fail-stop answer). Zero keeps
// the default (2).
func WithRetry(n int) Option {
	return func(c *callCfg) { c.retries = n; c.resilient = true }
}

// WithUnresponsive marks nodes as fail-stopped for SolveDistributed:
// they swallow proposals without acknowledging, so the wave prunes them
// after the retry budget instead of hanging.
func WithUnresponsive(names ...string) Option {
	return func(c *callCfg) {
		c.unresponsive = append(c.unresponsive, names...)
		c.resilient = true
	}
}

// WithStop sets the instant the root stops releasing tasks (Simulate,
// SimulateAdaptive) or bounds the evidence window (Analyze*).
func WithStop(t Rational) Option {
	return func(c *callCfg) { c.stop = t }
}

// WithPeriods makes Simulate run for n root periods instead of an
// absolute stop time.
func WithPeriods(n int) Option {
	return func(c *callCfg) { c.periods = n }
}

// WithTasks sets the finite batch size: Simulate releases exactly n
// tasks and stops; Execute and ExecuteAdaptive run the batch to
// completion.
func WithTasks(n int) Option {
	return func(c *callCfg) { c.tasks = n }
}

// WithSkipIntervals suppresses Gantt interval recording during
// simulation; completions and buffer samples are still recorded. Use it
// for large sweeps.
func WithSkipIntervals() Option {
	return func(c *callCfg) { c.skip = true }
}

// WithSimOptions seeds the full simulation configuration for fields
// without a dedicated option (BurstRoot, MaxEvents). Dedicated options
// applied after it override the seeded fields.
func WithSimOptions(o SimOptions) Option {
	return func(c *callCfg) { c.simOptions = o; c.simSet = true }
}

// WithScheduleOptions configures schedule construction wherever one is
// built: BuildSchedule, QuantizeSchedule, UnmarshalDeployment, and the
// re-solved schedules inside the adaptive loop.
func WithScheduleOptions(o ScheduleOptions) Option {
	return func(c *callCfg) { c.schedOptions = o }
}

// WithBlock switches schedule construction to block allocation instead
// of the default interleaved pattern — shorthand for the one
// ScheduleOptions field with a wire-level counterpart (api/v1
// SubmitRequest.Block).
func WithBlock() Option {
	return func(c *callCfg) { c.schedOptions.Block = true }
}

// WithScale converts one virtual time unit to the given wall-clock
// duration in Execute and ExecuteAdaptive.
func WithScale(d time.Duration) Option {
	return func(c *callCfg) { c.scale = d }
}

// WithWork installs the per-task payload run on the executing node's
// goroutine in Execute and ExecuteAdaptive.
func WithWork(f func(node NodeID, task int)) Option {
	return func(c *callCfg) { c.work = f }
}

// WithExecuteConfig seeds the full execution configuration; the
// schedule argument of Execute and dedicated options applied after it
// override the seeded fields.
func WithExecuteConfig(cfg ExecuteConfig) Option {
	return func(c *callCfg) { c.execConfig = cfg; c.execSet = true }
}

// WithAnalyzeOptions seeds the full conformance-analysis configuration
// (thresholds, expected schedule); dedicated options applied after it
// override the seeded fields.
func WithAnalyzeOptions(o AnalyzeOptions) Option {
	return func(c *callCfg) { c.anOptions = o; c.anSet = true }
}

// WithFaults appends scripted perturbations to the fault timeline of
// SimulateAdaptive / ExecuteAdaptive (see DegradeLink, SlowNode,
// CrashNode, RandomFaults).
func WithFaults(faults ...Fault) Option {
	return func(c *callCfg) { c.faults = append(c.faults, faults...) }
}

// WithDriftWindow sets the drift-detection window width; zero derives
// it from the active schedule's rootless period.
func WithDriftWindow(w Rational) Option {
	return func(c *callCfg) { c.adaptOptions.Window = w }
}

// WithDriftThreshold sets the minimum worst-node achieved/α ratio per
// detection window before the window counts as bad (default 0.85).
func WithDriftThreshold(ratio float64) Option {
	return func(c *callCfg) { c.adaptOptions.Threshold = ratio }
}

// WithDriftDebounce sets how many consecutive bad windows fire the
// drift detector (default 2: quantized schedules deliver in bursts, so
// isolated bad windows are normal).
func WithDriftDebounce(windows int) Option {
	return func(c *callCfg) { c.adaptOptions.Consecutive = windows }
}

// WithMaxAdapts bounds the number of re-negotiations an adaptive run
// may perform before giving up with ErrAdaptTimeout (default 4).
func WithMaxAdapts(n int) Option {
	return func(c *callCfg) { c.adaptOptions.MaxAdapts = n }
}

// WithDetectOnly disables adaptation: the first detected drift surfaces
// as an error wrapping ErrScheduleStale instead of triggering a
// re-solve. DetectDrift is shorthand for SimulateAdaptive with this.
func WithDetectOnly() Option {
	return func(c *callCfg) { c.detectOnly = true }
}

// WithCrashFactor sets the compute slowdown standing in for a
// fail-stopped process (zero keeps the controller defaults: 1<<20 in
// simulation, 16 in wall-clock execution, where the goroutines must
// still drain).
func WithCrashFactor(factor int64) Option {
	return func(c *callCfg) { c.adaptOptions.CrashFactor = factor }
}

// WithVerifyPeriods sets how many periods of the final schedule the
// post-swap verification window must cover (default 4); the adaptive
// run extends its horizon past the stop time if needed.
func WithVerifyPeriods(n int64) Option {
	return func(c *callCfg) { c.adaptOptions.VerifyPeriods = n }
}

// WithAdaptOptions seeds the full adaptive-controller configuration;
// dedicated options applied after it override the seeded fields.
func WithAdaptOptions(o AdaptOptions) Option {
	return func(c *callCfg) { c.adaptOptions = o }
}

// WithChurn seeds the stochastic churn generator of SimulateChurn: the
// seed fully determines the fault script (and the run's event log) for
// a given platform and horizon.
func WithChurn(cfg ChurnConfig) Option {
	return func(c *callCfg) { c.churn = cfg }
}

// WithRetentionFloor sets the graceful-degradation contract's hard
// floor for SimulateChurn: a re-solve whose throughput falls below this
// fraction of the baseline is retried with backoff, and an exhausted
// retry budget collapses the run with ErrChurnCollapse (default 0.5).
func WithRetentionFloor(f float64) Option {
	return func(c *callCfg) { c.retentionFloor = f }
}

// WithFlapQuarantine quarantines a node perturbed in threshold re-solve
// cycles within window: its subtree is pruned from subsequent schedules
// instead of being chased (defaults: 3 cycles within a quarter of the
// horizon).
func WithFlapQuarantine(threshold int, window Rational) Option {
	return func(c *callCfg) {
		c.flapThreshold = threshold
		c.flapWindow = window
	}
}

// WithResolveRetries bounds how many consecutive failed churn re-solves
// are retried, each backing off exponentially from the given base (zero
// base uses the detection window), before the run collapses.
func WithResolveRetries(n int, backoff Rational) Option {
	return func(c *callCfg) {
		c.resolveRetries = n
		c.retryBackoff = backoff
	}
}

// materializers

func (c callCfg) buildSimOptions() SimOptions {
	o := c.simOptions
	if c.stop.IsPos() {
		o.Stop = c.stop
	}
	if c.periods > 0 {
		o.Periods = c.periods
	}
	if c.tasks > 0 {
		o.Tasks = c.tasks
	}
	if c.skip {
		o.SkipIntervals = true
	}
	if c.obs != nil {
		o.Obs = c.obs
	}
	return o
}

func (c callCfg) buildResilientOptions() proto.ResilientOptions {
	return proto.ResilientOptions{Timeout: c.timeout, Backoff: c.backoff, Retries: c.retries}
}

func (c callCfg) buildExecConfig(s *Schedule) ExecuteConfig {
	cfg := c.execConfig
	cfg.Schedule = s
	if c.tasks > 0 {
		cfg.Tasks = c.tasks
	}
	if c.scale > 0 {
		cfg.Scale = c.scale
	}
	if c.work != nil {
		cfg.Work = c.work
	}
	if c.obs != nil {
		cfg.Obs = c.obs
	}
	return cfg
}

func (c callCfg) buildAnalyzeOptions() AnalyzeOptions {
	o := c.anOptions
	if c.stop.IsPos() {
		o.Stop = c.stop
	}
	return o
}

func (c callCfg) buildChurnOptions() adapt.ChurnOptions {
	return adapt.ChurnOptions{
		Options:        c.buildAdaptOptions(),
		Churn:          c.churn,
		RetentionFloor: c.retentionFloor,
		ResolveRetries: c.resolveRetries,
		RetryBackoff:   c.retryBackoff,
		FlapThreshold:  c.flapThreshold,
		FlapWindow:     c.flapWindow,
	}
}

func (c callCfg) buildAdaptOptions() AdaptOptions {
	o := c.adaptOptions
	if len(c.faults) > 0 {
		o.Faults = append(append([]Fault(nil), o.Faults...), c.faults...)
	}
	if c.stop.IsPos() {
		o.Stop = c.stop
	}
	if c.timeout > 0 {
		o.Timeout = c.timeout
	}
	if c.backoff > 0 {
		o.Backoff = c.backoff
	}
	if c.retries > 0 {
		o.Retries = c.retries
	}
	if c.detectOnly {
		o.MaxAdapts = -1
	}
	if c.schedOptions != (ScheduleOptions{}) {
		o.Sched = c.schedOptions
	}
	if c.obs != nil {
		o.Obs = c.obs
	}
	return o
}

package bwc

// Adaptive runtime: the closed loop the paper leaves open in Section 5.
// BW-First is cheap enough to re-run whenever the platform drifts, so
// SimulateAdaptive / ExecuteAdaptive inject faults on a timeline, watch
// windowed per-node throughput (and, in simulation, buffer watermarks)
// against the active schedule, re-negotiate on the measured platform —
// crashed children pruned by the resilient wave after bounded retries —
// and hot-swap the new schedule at a period boundary without stopping
// the run. See internal/adapt.

import (
	"bwc/internal/adapt"
	"bwc/internal/obs/analyze"
)

// Adaptive-runtime types.
type (
	// AdaptOptions is the full adaptive-controller configuration
	// (WithAdaptOptions seeds it; dedicated options override fields).
	AdaptOptions = adapt.Options
	// Fault is one scripted perturbation of the platform at a point in
	// virtual time.
	Fault = adapt.Fault
	// FaultKind selects how a Fault perturbs the platform.
	FaultKind = adapt.FaultKind
	// Adaptation records one detect → re-solve → hot-swap cycle.
	Adaptation = adapt.Adaptation
	// AdaptReport is the outcome of a SimulateAdaptive run: the final
	// verification run, the adaptation log, and the pre-/post-swap
	// conformance reports.
	AdaptReport = adapt.SimReport
	// AdaptExecReport is the outcome of an ExecuteAdaptive run.
	AdaptExecReport = adapt.ExecReport
	// DriftReport is one detected deviation from the active schedule.
	DriftReport = adapt.Drift
	// DriftWindow is the windowed statistic that fired the detector.
	DriftWindow = analyze.WindowStat
)

// Fault kinds, for hand-assembled Faults; the constructors below cover
// the common cases.
const (
	FaultLinkSet     = adapt.LinkSet
	FaultLinkScale   = adapt.LinkScale
	FaultLinkRestore = adapt.LinkRestore
	FaultNodeSet     = adapt.NodeSet
	FaultNodeScale   = adapt.NodeScale
	FaultNodeRestore = adapt.NodeRestore
	FaultCrash       = adapt.Crash
)

// DegradeLink schedules the node's incoming communication time to become
// comm at virtual time at (the PR's canonical drift: a congested link).
func DegradeLink(at Rational, node string, comm Rational) Fault {
	return Fault{At: at, Node: node, Kind: adapt.LinkSet, Value: comm}
}

// RestoreLink schedules the node's incoming link back to its baseline c.
func RestoreLink(at Rational, node string) Fault {
	return Fault{At: at, Node: node, Kind: adapt.LinkRestore}
}

// SlowNode schedules the node's processing time to be multiplied by
// factor (> 1 is a slowdown).
func SlowNode(at Rational, node string, factor Rational) Fault {
	return Fault{At: at, Node: node, Kind: adapt.NodeScale, Value: factor}
}

// RestoreNode schedules the node's processing time back to its baseline w.
func RestoreNode(at Rational, node string) Fault {
	return Fault{At: at, Node: node, Kind: adapt.NodeRestore}
}

// CrashNode schedules a fail-stop of the node's process: its compute
// rate collapses and it stops answering protocol messages, so the next
// negotiation wave prunes its whole subtree. The link itself stays up,
// and the crash is permanent for the run.
func CrashNode(at Rational, node string) Fault {
	return Fault{At: at, Node: node, Kind: adapt.Crash}
}

// RandomFaults generates a reproducible fault script for t: n
// degradation events (link or node slowdowns by a factor of 2–8) spread
// over the middle of [0, horizon), half of them followed by a restore.
// The root is never targeted.
func RandomFaults(t *Tree, seed int64, n int, horizon Rational) []Fault {
	return adapt.RandomFaults(t, seed, n, horizon)
}

// SimulateAdaptive runs the closed adaptation loop against the exact
// simulator: simulate s under the fault timeline (WithFaults) until
// WithStop, scan for drift against the active schedule, re-negotiate on
// the measured platform, and hot-swap the re-solved schedule at the next
// root period boundary (draining the stale backlog first); repeat until
// no drift remains or the adaptation budget (WithMaxAdapts) is
// exhausted. The returned report carries the pre-swap conformance report
// (expected to FAIL when faults bite) and the post-swap report on the
// final regime (Healed reports whether it passes every check).
//
// The controller is deterministic: identical inputs replay identical
// timelines.
func SimulateAdaptive(s *Schedule, opts ...Option) (*AdaptReport, error) {
	return adapt.SimulateAdaptive(s, buildCfg(opts).buildAdaptOptions())
}

// ExecuteAdaptive runs a finite batch (WithTasks, WithScale) on the real
// goroutine runtime with the fault timeline injected at wall-clock
// instants and a monitor goroutine watching the per-node execution
// counters window by window; on drift it re-solves and hot-swaps
// mid-batch. The batch always runs to completion — adaptation errors are
// reported alongside the completed report, never by abandoning in-flight
// tasks. Wall-clock detection jitters, so thresholds should be looser
// than in simulation.
func ExecuteAdaptive(s *Schedule, opts ...Option) (*AdaptExecReport, error) {
	cfg := buildCfg(opts)
	return adapt.ExecuteAdaptive(s, adapt.ExecOptions{
		Options: cfg.buildAdaptOptions(),
		Tasks:   cfg.tasks,
		Scale:   cfg.scale,
		Work:    cfg.work,
	})
}

// DetectDrift runs the detection half of the loop without ever adapting:
// nil if the simulated run conforms to s throughout, otherwise an error
// wrapping ErrScheduleStale describing the first drift.
func DetectDrift(s *Schedule, opts ...Option) error {
	return adapt.DetectOnly(s, buildCfg(opts).buildAdaptOptions())
}

// Churn-hardened runtime types.
type (
	// ChurnConfig seeds the stochastic fleet-churn generator
	// (WithChurn); the same seed reproduces a byte-identical fault
	// script and event log.
	ChurnConfig = adapt.ChurnConfig
	// ChurnReport is the outcome of a SimulateChurn run: the adaptive
	// report plus the fault script, oracle retention comparison,
	// quarantine list, per-cycle re-solve stats, and the deterministic
	// event log.
	ChurnReport = adapt.ChurnReport
	// ChurnReSolve records the cost of one incremental re-solve cycle.
	ChurnReSolve = adapt.ReSolveStat
)

// GenerateChurn compiles cfg into a reproducible churn fault script for
// t over [0, horizon): join/leave events, bandwidth and compute drift,
// and a bounded budget of fail-stop crashes, with heavy-tailed
// inter-arrival gaps thinned by a diurnal intensity envelope.
func GenerateChurn(t *Tree, horizon Rational, cfg ChurnConfig) []Fault {
	return adapt.GenerateChurn(t, horizon, cfg)
}

// SimulateChurn runs the churn-hardened closed loop: generate seeded
// churn (WithChurn), detect drift, and re-solve incrementally along the
// affected root-to-leaf spine only — memoized subtree solutions are
// reused, and only the changed node schedules are hot-swapped through
// the engine. Flapping nodes are quarantined after repeated
// perturbations, failed re-solves are retried with seeded backoff
// jitter, and a run whose retained throughput stays below the retention
// floor (WithRetentionFloor) after the retry budget returns an error
// wrapping ErrChurnCollapse. The report compares the retained
// steady-state throughput against an oracle full re-solve on the final
// platform.
func SimulateChurn(s *Schedule, opts ...Option) (*ChurnReport, error) {
	return adapt.SimulateChurn(s, buildCfg(opts).buildChurnOptions())
}

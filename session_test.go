package bwc_test

import (
	"sync"
	"testing"

	"bwc"
	"bwc/internal/benchfix"
)

func sessionTree() *bwc.Tree { return bwc.GeneratePlatform(bwc.Uniform, 24, 11) }

// TestSessionSolveCaches: the second Solve of the same platform is a
// memo hit returning the identical result.
func TestSessionSolveCaches(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	r1 := sess.Solve(tr)
	r2 := sess.Solve(tr)
	if r1 != r2 {
		t.Fatal("cache hit returned a different *Result")
	}
	// A structurally identical rebuild shares the fingerprint, a changed
	// weight does not.
	clone, err := bwc.ParsePlatformString(bwc.FormatPlatform(tr))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Solve(clone) != r1 {
		t.Fatal("identical platform missed the cache")
	}
	st := sess.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 2 hits, 1 entry", st)
	}
}

// TestSessionScheduleOptionsKeyed: schedules memoize per construction
// options, so Block and interleaved patterns coexist.
func TestSessionScheduleOptionsKeyed(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	s1, err := sess.BuildSchedule(tr)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sess.BuildSchedule(tr, bwc.WithScheduleOptions(bwc.ScheduleOptions{Block: true}))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("different schedule options shared one memo entry")
	}
	s3, err := sess.BuildSchedule(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s3 {
		t.Fatal("schedule cache hit returned a different *Schedule")
	}
	if st := sess.Stats(); st.Schedules != 2 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want 2 schedule entries over 1 solve", st)
	}
}

// TestSessionConcurrent hammers one Session from many goroutines (run
// under -race in tier 1): concurrent calls for the same platform must
// coalesce onto a single solve and all observe the same result.
func TestSessionConcurrent(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	want := sess.Solve(tr)

	const goroutines = 16
	results := make([]*bwc.Result, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sess.Solve(tr)
			if _, err := sess.BuildSchedule(tr); err != nil {
				t.Error(err)
				return
			}
			if i%4 == 0 {
				if _, err := sess.Simulate(tr, bwc.WithPeriods(2), bwc.WithSkipIntervals()); err != nil {
					t.Error(err)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != want {
			t.Fatalf("goroutine %d saw a different result", i)
		}
	}
	if st := sess.Stats(); st.Misses != 2 { // one solve + one schedule
		t.Fatalf("stats = %+v, want exactly 2 misses", st)
	}
}

// TestSessionInvalidate: dropping a platform forces the next call back
// through the solver.
func TestSessionInvalidate(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	r1 := sess.Solve(tr)
	sess.Invalidate(tr)
	if st := sess.Stats(); st.Solves != 0 {
		t.Fatalf("stats = %+v after Invalidate, want no entries", st)
	}
	if sess.Solve(tr) == r1 {
		t.Fatal("invalidated entry still served")
	}
}

// TestSessionInvalidateRace pins satellite safety under -race: many
// goroutines solving, invalidating (double-invalidating the same
// platform), and delta-invalidating one Session concurrently must
// neither race nor corrupt the memo — afterwards a fresh Solve still
// returns a correct, cacheable result.
func TestSessionInvalidateRace(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	mutated, err := tr.WithCommTime(tr.MustLookup("N3"), bwc.RatInt(7))
	if err != nil {
		t.Fatal(err)
	}
	want := bwc.Solve(tr).Throughput

	const goroutines = 24
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				switch (i + j) % 4 {
				case 0:
					if r := sess.Solve(tr); !r.Throughput.Equal(want) {
						t.Error("corrupted memo entry")
						return
					}
				case 1:
					sess.Invalidate(tr)
				case 2:
					sess.Invalidate(tr) // double-invalidation of the same platform
					sess.Invalidate(mutated)
				case 3:
					sess.InvalidateDelta(tr, mutated)
				}
			}
		}(i)
	}
	wg.Wait()
	if r := sess.Solve(tr); !r.Throughput.Equal(want) {
		t.Fatal("memo inconsistent after concurrent invalidation")
	}
}

// TestSessionInvalidateDelta: the delta-aware Invalidate drops the old
// platform and primes the mutated one with an incremental re-solve that
// matches a cold full solve exactly.
func TestSessionInvalidateDelta(t *testing.T) {
	sess := bwc.NewSession()
	tr := sessionTree()
	sess.Solve(tr)
	mutated, err := tr.WithCommTime(tr.MustLookup("N3"), bwc.RatInt(7))
	if err != nil {
		t.Fatal(err)
	}
	res := sess.InvalidateDelta(tr, mutated)
	if res == nil {
		t.Fatal("InvalidateDelta returned nil despite a cached old platform")
	}
	if !res.Throughput.Equal(bwc.Solve(mutated).Throughput) {
		t.Fatalf("incremental re-prime throughput %s != full solve", res.Throughput)
	}
	// The mutated platform is already primed...
	pre := sess.Stats()
	if sess.Solve(mutated) != res {
		t.Fatal("mutated platform not primed with the incremental result")
	}
	if st := sess.Stats(); st.Hits != pre.Hits+1 {
		t.Fatalf("solve of the mutated platform missed (stats %+v -> %+v)", pre, st)
	}
	// ...and the old one was invalidated.
	preMisses := sess.Stats().Misses
	sess.Solve(tr)
	if st := sess.Stats(); st.Misses != preMisses+1 {
		t.Fatalf("stale platform still cached (stats %+v)", st)
	}
	// With no cached old platform, it degrades to a plain Invalidate.
	sess.Reset()
	if sess.InvalidateDelta(tr, mutated) != nil {
		t.Fatal("InvalidateDelta fabricated a result from a cold memo")
	}
}

// TestSessionAdaptiveReprimes: an adaptive run that re-negotiated drops
// the pre-fault platform from the memo and primes the re-solved
// schedule under the measured platform's fingerprint, so the follow-up
// solve of the post-fault platform is already a hit.
func TestSessionAdaptiveReprimes(t *testing.T) {
	sess := bwc.NewSession()
	tr := bwc.PaperExampleTree()
	rep, err := sess.SimulateAdaptive(tr,
		bwc.WithFaults(bwc.DegradeLink(bwc.RatInt(120), "P1", bwc.RatInt(4))),
		bwc.WithStop(bwc.RatInt(400)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adaptations) != 1 {
		t.Fatalf("%d adaptations, want 1", len(rep.Adaptations))
	}

	measured := rep.Adaptations[0].Schedule.Tree
	pre := sess.Stats()
	if sess.Solve(measured) != rep.Adaptations[0].Schedule.Res {
		t.Fatal("measured platform not primed with the re-solved result")
	}
	if st := sess.Stats(); st.Hits != pre.Hits+1 {
		t.Fatalf("solve of the measured platform missed (stats %+v -> %+v)", pre, st)
	}

	// The pre-fault platform was invalidated: solving it again misses.
	preMisses := sess.Stats().Misses
	sess.Solve(tr)
	if st := sess.Stats(); st.Misses != preMisses+1 {
		t.Fatalf("stale platform still cached (stats %+v)", st)
	}
}

// TestSessionPerFingerprintStats: Stats breaks hits/misses/evictions
// down per platform fingerprint, StatsFor reads one tenant, and the
// ByFingerprint map is a deep copy that stays valid after mutation.
func TestSessionPerFingerprintStats(t *testing.T) {
	sess := bwc.NewSession()
	a := sessionTree()
	b := bwc.GeneratePlatform(bwc.Uniform, 12, 5)
	fpA, fpB := bwc.PlatformFingerprint(a), bwc.PlatformFingerprint(b)
	if fpA == fpB {
		t.Fatal("distinct platforms share a fingerprint")
	}

	sess.Solve(a)
	sess.Solve(a)
	sess.Solve(b)
	st := sess.Stats()
	if got := st.ByFingerprint[fpA]; got.Misses != 1 || got.Hits != 1 {
		t.Fatalf("fpA stats = %+v, want 1 miss / 1 hit", got)
	}
	if got := st.ByFingerprint[fpB]; got.Misses != 1 || got.Hits != 0 {
		t.Fatalf("fpB stats = %+v, want 1 miss / 0 hits", got)
	}

	// Invalidate counts an eviction against the right fingerprint only.
	sess.Invalidate(a)
	if got := sess.StatsFor(fpA); got.Evictions != 1 {
		t.Fatalf("fpA evictions = %d, want 1", got.Evictions)
	}
	if got := sess.StatsFor(fpB); got.Evictions != 0 {
		t.Fatalf("fpB evictions = %d, want 0", got.Evictions)
	}
	if got := sess.StatsFor("unseen"); got != (bwc.FingerprintStats{}) {
		t.Fatalf("unseen fingerprint stats = %+v, want zero", got)
	}

	// The snapshot is a copy: later session activity must not mutate it.
	snap := sess.Stats()
	before := snap.ByFingerprint[fpB]
	sess.Solve(b)
	if snap.ByFingerprint[fpB] != before {
		t.Fatal("Stats snapshot mutated by later session activity")
	}
}

// TestSessionStatsConcurrent reads Stats/StatsFor while other goroutines
// solve and invalidate (run under -race): the deep-copied snapshot is
// coherent under concurrent eviction.
func TestSessionStatsConcurrent(t *testing.T) {
	sess := bwc.NewSession()
	trees := []*bwc.Tree{sessionTree(), bwc.GeneratePlatform(bwc.Uniform, 12, 5)}
	fps := []string{bwc.PlatformFingerprint(trees[0]), bwc.PlatformFingerprint(trees[1])}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				tr := trees[(w+i)%2]
				sess.Solve(tr)
				if i%5 == 0 {
					sess.Invalidate(tr)
				}
				st := sess.Stats()
				for _, fp := range fps {
					fpSt := st.ByFingerprint[fp]
					if fpSt.Hits < 0 || fpSt.Misses < 0 {
						t.Error("negative counters in snapshot")
						return
					}
					sess.StatsFor(fp)
				}
			}
		}(w)
	}
	wg.Wait()
	st := sess.Stats()
	total := 0
	for _, fpSt := range st.ByFingerprint {
		total += fpSt.Hits + fpSt.Misses
	}
	if total != st.Hits+st.Misses {
		t.Fatalf("per-fingerprint counters (%d) do not sum to the totals (%d)",
			total, st.Hits+st.Misses)
	}
}

// TestSessionPrimeAndCached: Prime installs a result without solving,
// Cached reads it without blocking, and a primed entry satisfies
// SolveCached as a hit.
func TestSessionPrimeAndCached(t *testing.T) {
	tr := sessionTree()
	donor := bwc.NewSession()
	res := donor.Solve(tr)

	sess := bwc.NewSession()
	if _, ok := sess.Cached(tr); ok {
		t.Fatal("empty session reports a cached result")
	}
	sess.Prime(tr, res)
	got, ok := sess.Cached(tr)
	if !ok || got != res {
		t.Fatal("primed result not visible through Cached")
	}
	solved, cached := sess.SolveCached(tr)
	if !cached || solved != res {
		t.Fatal("primed entry did not satisfy SolveCached as a hit")
	}
	// Prime(nil) is a no-op, not a poisoned entry.
	fresh := bwc.NewSession()
	fresh.Prime(tr, nil)
	if _, ok := fresh.Cached(tr); ok {
		t.Fatal("Prime(nil) installed an entry")
	}
}

// BenchmarkSessionSolveCold measures the full negotiation wave per call
// (fresh Session each time); BenchmarkSessionSolveCached measures the
// memo hit. The recorded speedup lives in EXPERIMENTS.md and must stay
// ≥10×.
func BenchmarkSessionSolveCold(b *testing.B) {
	tr := benchfix.Uniform64()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bwc.NewSession().Solve(tr)
	}
}

func BenchmarkSessionSolveCached(b *testing.B) {
	tr := benchfix.Uniform64()
	sess := bwc.NewSession()
	sess.Solve(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess.Solve(tr)
	}
}

package apiv1

import (
	"encoding/json"
	"time"
)

// Cache markers on SubmitResponse.Cache: how the control plane served
// the solve.
const (
	// CacheMiss: this submit ran the negotiation wave cold.
	CacheMiss = "miss"
	// CacheHit: the solve was served from the tenant's memo (including
	// a coalesced concurrent solve another client started).
	CacheHit = "hit"
	// CacheReprimed: the platform had been evicted from the session
	// shard; its retained result was re-installed — via the incremental
	// spine re-solve when the weights drifted — instead of solving cold.
	CacheReprimed = "reprimed"
)

// SubmitRequest asks the control plane to solve a platform and
// materialize its schedule. Platform is the line-oriented text format
// ("name parent comm proc" lines, '-' for the root, "inf" for
// switches).
type SubmitRequest struct {
	Platform string `json:"platform"`
	// Block selects block allocation instead of interleaving.
	Block bool `json:"block,omitempty"`
	// Quantize, when > 0, rounds rates to denominators dividing it,
	// bounding every period at a small throughput loss.
	Quantize int64 `json:"quantize,omitempty"`
	// UniformReturn, when set (rational string), applies the same
	// result-return time d to every link before solving (Section 9).
	// Per-link values travel in the platform text's optional 5th column.
	// Additive field: absent means forward-only, as before.
	UniformReturn string `json:"uniform_return,omitempty"`
}

// SubmitResponse is the solved steady state: throughput, periods, and
// the deployment document each node needs to derive its own schedule.
type SubmitResponse struct {
	APIVersion  string `json:"api_version"`
	Fingerprint string `json:"fingerprint"`
	// Cache is CacheMiss, CacheHit or CacheReprimed.
	Cache string `json:"cache"`
	// Throughput is the exact optimal rate (tasks/unit) as a rational
	// string; ThroughputFloat is its advisory float rendering.
	Throughput      string  `json:"throughput"`
	ThroughputFloat float64 `json:"throughput_float"`
	// Quantized is the achieved rate after quantization (only set when
	// the request quantized).
	Quantized string `json:"quantized,omitempty"`
	Nodes     int    `json:"nodes"`
	Visited   int    `json:"visited"`
	// TreePeriod / RootlessPeriod / StartupBound are the schedule's
	// structural quantities (integer / rational strings).
	TreePeriod     string `json:"tree_period"`
	RootlessPeriod string `json:"rootless_period"`
	StartupBound   string `json:"startup_bound"`
	// Deployment is the compact per-node schedule document
	// (bwc.MarshalDeployment): ψ quantities and consuming periods.
	Deployment json.RawMessage `json:"deployment"`
	// ResultReturn marks a Section-9 platform (some link has d > 0);
	// FoldedThroughput is then the rate the folded model (d merged into
	// c) would reach — the gap to Throughput is the modeling error.
	// Additive fields: omitted on forward-only platforms.
	ResultReturn     bool   `json:"result_return,omitempty"`
	FoldedThroughput string `json:"folded_throughput,omitempty"`
}

// SimulateRequest runs a platform's memoized schedule on the
// virtual-time backend. Exactly one of Stop (rational string), Periods
// or Tasks sets the horizon; all empty defaults to 3 root periods.
type SimulateRequest struct {
	Platform string `json:"platform"`
	Block    bool   `json:"block,omitempty"`
	Stop     string `json:"stop,omitempty"`
	Periods  int    `json:"periods,omitempty"`
	Tasks    int    `json:"tasks,omitempty"`
	// Analyze additionally replays the run's telemetry through the
	// conformance analyzer and attaches the report.
	Analyze bool `json:"analyze,omitempty"`
	// UniformReturn applies the same result-return time d to every link
	// before solving and simulating (additive; see SubmitRequest).
	UniformReturn string `json:"uniform_return,omitempty"`
}

// SimulateResponse summarizes a completed simulation.
type SimulateResponse struct {
	APIVersion  string  `json:"api_version"`
	Fingerprint string  `json:"fingerprint"`
	RunID       string  `json:"run_id"`
	Throughput  string  `json:"throughput"`
	StopAt      string  `json:"stop_at"`
	Generated   int     `json:"generated"`
	Completed   int     `json:"completed"`
	SteadyStart string  `json:"steady_start,omitempty"`
	SteadyOK    bool    `json:"steady_ok"`
	WindDown    string  `json:"wind_down"`
	MaxBuffered int     `json:"max_buffered"`
	Report      *Report `json:"report,omitempty"`
	// ResultsReturned counts task results that reached the root; equal
	// to Completed after drain on result-return platforms. Additive
	// field: omitted (zero) on forward-only runs.
	ResultsReturned int `json:"results_returned,omitempty"`
}

// AnalyzeRequest simulates a platform under an observer and replays the
// telemetry through the paper's conformance checks.
type AnalyzeRequest struct {
	Platform string `json:"platform"`
	Block    bool   `json:"block,omitempty"`
	Stop     string `json:"stop,omitempty"`
	Periods  int    `json:"periods,omitempty"`
}

// AnalyzeResponse carries the verdicts. Each check is also published on
// the event stream as one "analyze.verdict" event.
type AnalyzeResponse struct {
	APIVersion  string `json:"api_version"`
	Fingerprint string `json:"fingerprint"`
	RunID       string `json:"run_id"`
	Report      Report `json:"report"`
}

// Verdict is one conformance check's outcome: PASS, FAIL or SKIP.
type Verdict struct {
	Name    string `json:"name"`
	Verdict string `json:"verdict"`
	Detail  string `json:"detail"`
}

// Report aggregates a run's verdicts.
type Report struct {
	Healthy bool      `json:"healthy"`
	Passed  int       `json:"passed"`
	Failed  int       `json:"failed"`
	Skipped int       `json:"skipped"`
	Checks  []Verdict `json:"checks"`
}

// FaultSpec is one scripted perturbation on an adaptive run's timeline.
// Kind is one of "degrade-link" (Value = new comm time), "slow-node"
// (Value = slowdown factor), "restore-link", "restore-node", "crash".
type FaultSpec struct {
	At    string `json:"at"`
	Kind  string `json:"kind"`
	Node  string `json:"node"`
	Value string `json:"value,omitempty"`
}

// AdaptiveRequest runs the closed adaptation loop: inject the scripted
// faults, detect drift, re-negotiate on the measured platform, hot-swap
// mid-run.
type AdaptiveRequest struct {
	Platform string      `json:"platform"`
	Stop     string      `json:"stop,omitempty"`
	Faults   []FaultSpec `json:"faults,omitempty"`
	// Threshold is the drift detector's worst-node achieved/α ratio
	// (default 0.85); MaxAdapts bounds re-negotiations (default 4).
	Threshold  float64 `json:"threshold,omitempty"`
	MaxAdapts  int     `json:"max_adapts,omitempty"`
	DetectOnly bool    `json:"detect_only,omitempty"`
}

// AdaptiveResponse summarizes the loop's outcome.
type AdaptiveResponse struct {
	APIVersion  string `json:"api_version"`
	Fingerprint string `json:"fingerprint"`
	RunID       string `json:"run_id"`
	Adaptations int    `json:"adaptations"`
	Healed      bool   `json:"healed"`
	// FinalThroughput is the last deployed schedule's steady-state rate.
	FinalThroughput string  `json:"final_throughput"`
	Pre             *Report `json:"pre,omitempty"`
	Post            *Report `json:"post,omitempty"`
}

// ChurnRequest runs the churn-hardened loop under seeded stochastic
// fleet churn with incremental spine re-solves.
type ChurnRequest struct {
	Platform string `json:"platform"`
	Seed     int64  `json:"seed"`
	// Rate is expected churn events per 100 virtual time units at peak
	// intensity; Duration is the horizon (rational string).
	Rate           float64 `json:"rate,omitempty"`
	Duration       string  `json:"duration,omitempty"`
	CrashFraction  float64 `json:"crash_fraction,omitempty"`
	RetentionFloor float64 `json:"retention_floor,omitempty"`
}

// ChurnResponse summarizes retention against the oracle re-solve.
type ChurnResponse struct {
	APIVersion  string   `json:"api_version"`
	Fingerprint string   `json:"fingerprint"`
	RunID       string   `json:"run_id"`
	Baseline    string   `json:"baseline"`
	Oracle      string   `json:"oracle"`
	Final       string   `json:"final"`
	Retention   float64  `json:"retention"`
	Cycles      int      `json:"cycles"`
	Quarantined []string `json:"quarantined,omitempty"`
	Collapsed   bool     `json:"collapsed"`
	Healed      bool     `json:"healed"`
}

// Run statuses.
const (
	RunRunning = "running"
	RunDone    = "done"
	RunFailed  = "failed"
)

// RunRecord is one entry of the control plane's bounded run history.
type RunRecord struct {
	ID          string    `json:"id"`
	Kind        string    `json:"kind"` // submit|simulate|analyze|adaptive|churn
	Fingerprint string    `json:"fingerprint"`
	Status      string    `json:"status"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at,omitzero"`
	// Summary is a one-line human-readable outcome.
	Summary string `json:"summary,omitempty"`
	Error   *Error `json:"error,omitempty"`
}

// RunsResponse lists the retained run history, newest first.
type RunsResponse struct {
	APIVersion string      `json:"api_version"`
	Runs       []RunRecord `json:"runs"`
}

// TenantStats is one platform fingerprint's slice of the session
// shard: its cache counters and, when the solve is cached, its
// throughput.
type TenantStats struct {
	Fingerprint string `json:"fingerprint"`
	Hits        int    `json:"hits"`
	Misses      int    `json:"misses"`
	Evictions   int    `json:"evictions"`
	Throughput  string `json:"throughput,omitempty"`
}

// StatsResponse is the control plane's cache and fleet view.
type StatsResponse struct {
	APIVersion string `json:"api_version"`
	// Sessions / Capacity are the shard's live size and LRU bound;
	// Evicted counts sessions dropped over the server's lifetime.
	Sessions int `json:"sessions"`
	Capacity int `json:"capacity"`
	Evicted  int `json:"evicted"`
	// Runs is how many runs the bounded history currently retains.
	Runs    int           `json:"runs"`
	Tenants []TenantStats `json:"tenants"`
}

// Event is one server-sent event on the /api/v1/events stream: run
// lifecycle markers, analyzer verdicts, drift detections, churn cycles,
// and every event the underlying observability bus emits during an
// instrumented run.
type Event struct {
	Seq  uint64    `json:"seq"`
	Wall time.Time `json:"wall"`
	// Virtual is the producer's rational virtual time, when it has one.
	Virtual string `json:"virtual,omitempty"`
	// Run is the run the event belongs to ("" for server-wide events).
	Run  string `json:"run,omitempty"`
	Name string `json:"name"`
	// Attrs are the event's key/value annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// HealthResponse is the /healthz document.
type HealthResponse struct {
	Status         string  `json:"status"`
	APIVersion     string  `json:"api_version"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	Sessions       int     `json:"sessions"`
	Runs           int     `json:"runs"`
	RunsFailed     int     `json:"runs_failed"`
	EventsStreamed uint64  `json:"events_streamed"`
}

// VersionResponse is the GET /api/v1/version document.
type VersionResponse struct {
	APIVersion string `json:"api_version"`
	Server     string `json:"server"`
}

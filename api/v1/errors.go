package apiv1

import (
	"errors"
	"fmt"
	"net/http"

	"bwc/internal/bwcerr"
)

// ErrorCode classifies a wire error. The set is append-only; each code
// maps to exactly one HTTP status and one bwsched exit code, pinning
// the wire contract to the CLI contract: a script driving the daemon
// over HTTP and a script driving the binary directly branch on the same
// classification.
type ErrorCode string

const (
	// CodeBadRequest: the request itself is malformed (invalid JSON,
	// missing fields, unparsable rationals). HTTP 400, exit 1.
	CodeBadRequest ErrorCode = "bad_request"
	// CodeNotFound: no such resource (unknown run ID, unknown platform
	// fingerprint, unknown endpoint). HTTP 404, exit 1.
	CodeNotFound ErrorCode = "not_found"
	// CodeNotATree wraps bwc.ErrNotATree: the submitted platform
	// violates the tree model. HTTP 422, exit 4.
	CodeNotATree ErrorCode = "not_a_tree"
	// CodeInfeasible wraps bwc.ErrInfeasible: no positive-throughput
	// steady state exists. HTTP 409, exit 5.
	CodeInfeasible ErrorCode = "infeasible"
	// CodeScheduleStale wraps bwc.ErrScheduleStale: drift detected with
	// adaptation disabled. HTTP 409, exit 6.
	CodeScheduleStale ErrorCode = "schedule_stale"
	// CodeAdaptTimeout wraps bwc.ErrAdaptTimeout: the adaptation loop
	// did not converge. HTTP 504, exit 7.
	CodeAdaptTimeout ErrorCode = "adapt_timeout"
	// CodePerfRegression wraps bwc.ErrPerfRegression: a benchmark
	// trajectory failed its baseline gate. HTTP 500, exit 8.
	CodePerfRegression ErrorCode = "perf_regression"
	// CodeChurnCollapse wraps bwc.ErrChurnCollapse: churn drove
	// retained throughput below the retention floor. HTTP 503, exit 9.
	CodeChurnCollapse ErrorCode = "churn_collapse"
	// CodeDaemonUnreachable wraps bwc.ErrDaemonUnreachable. The server
	// never emits it — it is the client-side classification for "no HTTP
	// response at all" — but it lives in the table so the whole exit-code
	// surface is defined in one place. HTTP 502, exit 10.
	CodeDaemonUnreachable ErrorCode = "daemon_unreachable"
	// CodeInternal: an unclassified server-side failure, mirroring the
	// CLI's "internal error" exit. HTTP 500, exit 3.
	CodeInternal ErrorCode = "internal"
)

// codeInfo pins one code's wire and CLI mapping.
type codeInfo struct {
	status   int
	exitCode int
	sentinel error // nil for codes without a facade sentinel
}

// codeTable is the single source of truth for the envelope ↔ exit-code
// contract; api/v1/README.md renders it and the CLI tests pin it.
var codeTable = map[ErrorCode]codeInfo{
	CodeBadRequest:        {http.StatusBadRequest, 1, nil},
	CodeNotFound:          {http.StatusNotFound, 1, nil},
	CodeNotATree:          {http.StatusUnprocessableEntity, 4, bwcerr.ErrNotATree},
	CodeInfeasible:        {http.StatusConflict, 5, bwcerr.ErrInfeasible},
	CodeScheduleStale:     {http.StatusConflict, 6, bwcerr.ErrScheduleStale},
	CodeAdaptTimeout:      {http.StatusGatewayTimeout, 7, bwcerr.ErrAdaptTimeout},
	CodePerfRegression:    {http.StatusInternalServerError, 8, bwcerr.ErrPerfRegression},
	CodeChurnCollapse:     {http.StatusServiceUnavailable, 9, bwcerr.ErrChurnCollapse},
	CodeDaemonUnreachable: {http.StatusBadGateway, 10, bwcerr.ErrDaemonUnreachable},
	CodeInternal:          {http.StatusInternalServerError, 3, nil},
}

// sentinelOrder lists the sentinel-backed codes in classification order
// (most specific first, matching the CLI's exitCode switch).
var sentinelOrder = []ErrorCode{
	CodeNotATree, CodeInfeasible, CodeScheduleStale, CodeAdaptTimeout,
	CodePerfRegression, CodeChurnCollapse, CodeDaemonUnreachable,
}

// HTTPStatus returns the HTTP status a response carrying this code uses.
// Unknown codes (a newer server talking to an older client) degrade to
// 500.
func (c ErrorCode) HTTPStatus() int {
	if info, ok := codeTable[c]; ok {
		return info.status
	}
	return http.StatusInternalServerError
}

// ExitCode returns the bwsched exit code for this classification —
// identical to what the CLI's own sentinel switch produces for the
// underlying error.
func (c ErrorCode) ExitCode() int {
	if info, ok := codeTable[c]; ok {
		return info.exitCode
	}
	return 1
}

// Sentinel returns the facade sentinel this code wraps, or nil for
// codes without one (bad_request, not_found, internal).
func (c ErrorCode) Sentinel() error {
	if info, ok := codeTable[c]; ok {
		return info.sentinel
	}
	return nil
}

// CodeOf classifies err exactly as the bwsched CLI does before mapping
// to an exit code: errors.Is against each sentinel, CodeInternal for
// everything unclassified.
func CodeOf(err error) ErrorCode {
	for _, c := range sentinelOrder {
		if errors.Is(err, codeTable[c].sentinel) {
			return c
		}
	}
	return CodeInternal
}

// Error is the typed wire error: the payload of every non-2xx response.
// It implements error and unwraps to the facade sentinel its code
// classifies, so a client that decoded an envelope can hand the Error
// straight to errors.Is — and the bwsched CLI's exit-code switch — as
// if the failure had happened in-process.
type Error struct {
	// Code is the stable machine-readable classification.
	Code ErrorCode `json:"code"`
	// Message is the human-readable detail; its wording is not part of
	// the compatibility contract.
	Message string `json:"message"`
	// ExitCode is the bwsched exit code for this classification,
	// duplicated on the wire so shell clients can branch without
	// carrying the table.
	ExitCode int `json:"exit_code"`
}

// NewError builds the wire error for err, classifying it through the
// same sentinel table the CLI uses.
func NewError(err error) *Error {
	c := CodeOf(err)
	return &Error{Code: c, Message: err.Error(), ExitCode: c.ExitCode()}
}

// Errorf builds a wire error with an explicit code (for request-shape
// failures that never passed through the facade).
func Errorf(code ErrorCode, format string, a ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, a...), ExitCode: code.ExitCode()}
}

// Error implements the error interface.
func (e *Error) Error() string {
	return fmt.Sprintf("%s (%s)", e.Message, e.Code)
}

// Unwrap returns the sentinel the code classifies (nil when there is
// none), making decoded envelopes errors.Is-matchable.
func (e *Error) Unwrap() error { return e.Code.Sentinel() }

// Envelope is the body of every error response: {"error": {...}}.
type Envelope struct {
	Error *Error `json:"error"`
}

// Package apiv1 is the versioned wire API of the bwschedd control
// plane: the request/response DTOs every HTTP endpoint speaks, and the
// typed error envelope that carries the facade's sentinel errors across
// the wire with the same classification the bwsched CLI exposes as exit
// codes.
//
// The package exists so the facade's Go types (bwc.Result, bwc.Schedule,
// bwc.SessionStats, ...) stop doubling as a wire format: those types are
// free to evolve with the solver, while everything in this package is a
// compatibility contract.
//
// # Compatibility policy
//
//   - Every DTO field has an explicit, stable JSON tag. Within api/v1,
//     fields are only ever added, never renamed, removed or retyped.
//   - Exact quantities (throughputs, periods, instants) travel as
//     rational strings ("10/9"); float companions are advisory.
//   - Error responses always carry the Envelope shape; Code values are
//     append-only and each maps to a fixed HTTP status and CLI exit
//     code (see ErrorCode).
//   - Unknown JSON fields are ignored by both sides, so older clients
//     keep working against newer servers and vice versa.
//   - Breaking changes get a new package (api/v2) and path prefix; v1
//     keeps serving until it is formally retired.
//
// See api/v1/README.md for the endpoint reference.
package apiv1

// Version is the wire API version this package defines.
const Version = "v1"

// PathPrefix is the URL prefix every versioned endpoint lives under.
const PathPrefix = "/api/v1"

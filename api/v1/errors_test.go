package apiv1

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"bwc/internal/bwcerr"
)

// TestCodeTable pins the full code ↔ HTTP status ↔ exit code ↔ sentinel
// contract. Rows here mirror api/v1/README.md and the CLI's exitCode
// switch; changing any mapping is a breaking wire change.
func TestCodeTable(t *testing.T) {
	for _, tc := range []struct {
		code     ErrorCode
		status   int
		exit     int
		sentinel error
	}{
		{CodeBadRequest, http.StatusBadRequest, 1, nil},
		{CodeNotFound, http.StatusNotFound, 1, nil},
		{CodeNotATree, http.StatusUnprocessableEntity, 4, bwcerr.ErrNotATree},
		{CodeInfeasible, http.StatusConflict, 5, bwcerr.ErrInfeasible},
		{CodeScheduleStale, http.StatusConflict, 6, bwcerr.ErrScheduleStale},
		{CodeAdaptTimeout, http.StatusGatewayTimeout, 7, bwcerr.ErrAdaptTimeout},
		{CodePerfRegression, http.StatusInternalServerError, 8, bwcerr.ErrPerfRegression},
		{CodeChurnCollapse, http.StatusServiceUnavailable, 9, bwcerr.ErrChurnCollapse},
		{CodeDaemonUnreachable, http.StatusBadGateway, 10, bwcerr.ErrDaemonUnreachable},
		{CodeInternal, http.StatusInternalServerError, 3, nil},
	} {
		if got := tc.code.HTTPStatus(); got != tc.status {
			t.Errorf("%s.HTTPStatus() = %d, want %d", tc.code, got, tc.status)
		}
		if got := tc.code.ExitCode(); got != tc.exit {
			t.Errorf("%s.ExitCode() = %d, want %d", tc.code, got, tc.exit)
		}
		if got := tc.code.Sentinel(); got != tc.sentinel {
			t.Errorf("%s.Sentinel() = %v, want %v", tc.code, got, tc.sentinel)
		}
	}
}

// TestCodeOf classifies wrapped sentinels exactly as the CLI does.
func TestCodeOf(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want ErrorCode
	}{
		{bwcerr.ErrNotATree, CodeNotATree},
		{fmt.Errorf("parse: %w", bwcerr.ErrNotATree), CodeNotATree},
		{fmt.Errorf("deep: %w", fmt.Errorf("wrap: %w", bwcerr.ErrInfeasible)), CodeInfeasible},
		{bwcerr.ErrScheduleStale, CodeScheduleStale},
		{bwcerr.ErrAdaptTimeout, CodeAdaptTimeout},
		{bwcerr.ErrPerfRegression, CodePerfRegression},
		{bwcerr.ErrChurnCollapse, CodeChurnCollapse},
		{bwcerr.ErrDaemonUnreachable, CodeDaemonUnreachable},
		{errors.New("anything else"), CodeInternal},
	} {
		if got := CodeOf(tc.err); got != tc.want {
			t.Errorf("CodeOf(%v) = %s, want %s", tc.err, got, tc.want)
		}
	}
}

// TestUnknownCodeDegrades: a newer server's unknown code must not crash
// an older client — it degrades to 500 / exit 1 / no sentinel.
func TestUnknownCodeDegrades(t *testing.T) {
	c := ErrorCode("from_the_future")
	if got := c.HTTPStatus(); got != http.StatusInternalServerError {
		t.Errorf("HTTPStatus = %d, want 500", got)
	}
	if got := c.ExitCode(); got != 1 {
		t.Errorf("ExitCode = %d, want 1", got)
	}
	if got := c.Sentinel(); got != nil {
		t.Errorf("Sentinel = %v, want nil", got)
	}
}

// TestErrorRoundTrip: an error built server-side, marshaled as an
// envelope, and decoded client-side must still satisfy errors.Is against
// the original sentinel — the property that makes daemon-mode exit codes
// identical to in-process ones.
func TestErrorRoundTrip(t *testing.T) {
	src := fmt.Errorf("platform line 3: %w", bwcerr.ErrNotATree)
	wire := NewError(src)
	if wire.Code != CodeNotATree || wire.ExitCode != 4 {
		t.Fatalf("NewError = %+v, want code not_a_tree / exit 4", wire)
	}
	body, err := json.Marshal(Envelope{Error: wire})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil {
		t.Fatal("decoded envelope has no error")
	}
	if !errors.Is(env.Error, bwcerr.ErrNotATree) {
		t.Errorf("decoded envelope does not unwrap to ErrNotATree: %v", env.Error)
	}
	if errors.Is(env.Error, bwcerr.ErrInfeasible) {
		t.Errorf("decoded envelope wrongly matches ErrInfeasible")
	}
	if env.Error.ExitCode != 4 {
		t.Errorf("decoded exit_code = %d, want 4", env.Error.ExitCode)
	}
}

// TestEnvelopeJSONShape pins the wire field names — stable tags are the
// compatibility contract.
func TestEnvelopeJSONShape(t *testing.T) {
	body, err := json.Marshal(Envelope{Error: Errorf(CodeBadRequest, "missing %q", "platform")})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	e, ok := raw["error"]
	if !ok {
		t.Fatalf("envelope missing %q key: %s", "error", body)
	}
	for _, key := range []string{"code", "message", "exit_code"} {
		if _, ok := e[key]; !ok {
			t.Errorf("error object missing %q key: %s", key, body)
		}
	}
	if e["code"] != "bad_request" {
		t.Errorf("code = %v, want bad_request", e["code"])
	}
	if e["exit_code"] != float64(1) {
		t.Errorf("exit_code = %v, want 1", e["exit_code"])
	}
}

// TestErrorfNoSentinel: request-shape errors carry no sentinel, so they
// never spuriously match errors.Is checks.
func TestErrorfNoSentinel(t *testing.T) {
	e := Errorf(CodeNotFound, "no such run")
	if errors.Is(e, bwcerr.ErrNotATree) {
		t.Error("not_found wrongly unwraps to ErrNotATree")
	}
	if e.Unwrap() != nil {
		t.Errorf("Unwrap = %v, want nil", e.Unwrap())
	}
}

package bwc

import "bwc/internal/bwcerr"

// Sentinel errors. Every error returned by the facade that stems from one
// of these conditions wraps the matching sentinel, so callers classify
// failures with errors.Is regardless of the wrapping message:
//
//	if errors.Is(err, bwc.ErrInfeasible) { ... }
//
// The bwsched CLI maps them to distinct exit codes (4–10) so shell
// pipelines can branch on the failure class, and the bwschedd control
// plane maps the same sentinels to HTTP statuses through the api/v1
// error envelope (see api/v1).
var (
	// ErrNotATree reports an input platform that violates the tree model:
	// structural builder and parser errors (no root, duplicate names,
	// unknown parents, non-positive weights, malformed platform files).
	ErrNotATree = bwcerr.ErrNotATree

	// ErrInfeasible reports that no positive-throughput steady state
	// exists for the requested operation — e.g. the root delegates
	// everything and computes nothing, or a re-solved schedule has no
	// usable root pattern.
	ErrInfeasible = bwcerr.ErrInfeasible

	// ErrScheduleStale reports drift detected against the active schedule
	// while adaptation was disabled (DetectDrift / WithDetectOnly): the
	// deployed schedule no longer matches the measured platform.
	ErrScheduleStale = bwcerr.ErrScheduleStale

	// ErrAdaptTimeout reports a non-converging adaptation loop: a
	// re-negotiation wave timed out at the root, or drift persisted after
	// the allowed number of adaptations.
	ErrAdaptTimeout = bwcerr.ErrAdaptTimeout

	// ErrPerfRegression reports a benchmark trajectory that failed the
	// regression gate against its committed baseline (`bwsched bench
	// -compare`): a gated metric exceeded its threshold or fell outside
	// its portable floor/ceiling.
	ErrPerfRegression = bwcerr.ErrPerfRegression

	// ErrChurnCollapse reports the graceful-degradation contract's
	// terminal state: sustained churn drove retained throughput below the
	// configured retention floor (WithRetentionFloor) and the re-solve
	// retry budget is exhausted. The bwsched CLI maps it to exit code 9.
	ErrChurnCollapse = bwcerr.ErrChurnCollapse

	// ErrDaemonUnreachable reports that a client-mode command (bwsched
	// submit / watch) could not reach the bwschedd control plane at all:
	// no HTTP response was received, so nothing about the platform was
	// evaluated. The bwsched CLI maps it to exit code 10; responses that
	// did arrive carry an api/v1 error envelope that unwraps to one of
	// the sentinels above instead.
	ErrDaemonUnreachable = bwcerr.ErrDaemonUnreachable
)

#!/bin/sh
# serve-smoke: end-to-end smoke of the bwschedd control plane.
#
# Starts `bwsched serve` on a random port and asserts, over the real
# wire: a cold submit of the Section-8 platform is flagged "miss" and a
# second submit "hit"; a malformed platform yields the typed 422
# not_a_tree envelope (HTTP and exit code 4 through the client); one
# analyzer verdict arrives over the SSE stream; and a client pointed at
# the dead daemon exits 10.
set -eu

BIN=${BIN:-/tmp/bwsched-serve-smoke}
DIR=$(mktemp -d)
SERVE_PID=""
cleanup() {
	[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
	rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/bwsched
"$BIN" example > "$DIR/paper.txt"
printf 'P0 - - 9\nP1 NOPE 1 2\n' > "$DIR/bad.txt"

"$BIN" serve -addr 127.0.0.1:0 -addr-file "$DIR/addr" &
SERVE_PID=$!
i=0
while [ ! -s "$DIR/addr" ]; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && { echo "serve-smoke: daemon never bound" >&2; exit 1; }
	sleep 0.1
done
ADDR=$(cat "$DIR/addr")
echo "serve-smoke: bwschedd at $ADDR"

echo "serve-smoke: cold submit must miss, second must hit"
"$BIN" submit -server "$ADDR" -f "$DIR/paper.txt" | tee "$DIR/first.out"
grep -q 'cache:        miss' "$DIR/first.out"
grep -q 'throughput:   10/9' "$DIR/first.out"
"$BIN" submit -server "$ADDR" -f "$DIR/paper.txt" | tee "$DIR/second.out"
grep -q 'cache:        hit' "$DIR/second.out"

echo "serve-smoke: malformed platform must yield the typed 422 envelope"
status=$(curl -s -o "$DIR/env.json" -w '%{http_code}' \
	-X POST "http://$ADDR/api/v1/platforms" \
	-d '{"platform": "P0 - - 9\nP1 NOPE 1 2\n"}')
test "$status" = 422 || { echo "HTTP $status, want 422" >&2; exit 1; }
grep -q '"code": "not_a_tree"' "$DIR/env.json"
grep -q '"exit_code": 4' "$DIR/env.json"
rc=0; "$BIN" submit -server "$ADDR" -f "$DIR/bad.txt" || rc=$?
test "$rc" -eq 4 || { echo "client exited $rc on the envelope, want 4" >&2; exit 1; }

echo "serve-smoke: one analyzer verdict must arrive over SSE"
"$BIN" watch -server "$ADDR" -event analyze.verdict -n 1 > "$DIR/watch.out" &
WATCH_PID=$!
i=0
while kill -0 "$WATCH_PID" 2>/dev/null; do
	i=$((i + 1))
	[ "$i" -gt 30 ] && { kill "$WATCH_PID"; echo "serve-smoke: no verdict over SSE" >&2; exit 1; }
	"$BIN" submit -server "$ADDR" -f "$DIR/paper.txt" -analyze > /dev/null
	sleep 0.2
done
wait "$WATCH_PID"
grep -q '"name":"analyze.verdict"' "$DIR/watch.out"

echo "serve-smoke: a dead daemon must map to exit code 10"
kill "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
rc=0; "$BIN" submit -server "$ADDR" -f "$DIR/paper.txt" || rc=$?
test "$rc" -eq 10 || { echo "client exited $rc against a dead daemon, want 10" >&2; exit 1; }

echo "serve-smoke: PASS"

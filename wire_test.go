package bwc_test

import (
	"fmt"
	"testing"

	"bwc"
)

// sameSchedule asserts every per-node quantity of the deployment wire
// format round-tripped exactly: activity, the rationals η_0 and η_i,
// and the Lemma 1 periods. Exact equality matters — the wire format
// carries rationals as num/den strings, so any drift would silently
// change the steady state a re-hydrated site enacts.
func sameSchedule(t *testing.T, want, got *bwc.Schedule) {
	t.Helper()
	if len(want.Nodes) != len(got.Nodes) {
		t.Fatalf("node count %d → %d", len(want.Nodes), len(got.Nodes))
	}
	for i := range want.Nodes {
		w, g := &want.Nodes[i], &got.Nodes[i]
		if w.Active != g.Active {
			t.Fatalf("node %d: Active %v → %v", i, w.Active, g.Active)
		}
		if !w.Active {
			continue
		}
		if w.Alpha.Cmp(g.Alpha) != 0 {
			t.Errorf("node %d: α %s → %s", i, w.Alpha, g.Alpha)
		}
		if len(w.Sends) != len(g.Sends) {
			t.Fatalf("node %d: %d sends → %d", i, len(w.Sends), len(g.Sends))
		}
		for j := range w.Sends {
			if w.Sends[j].Cmp(g.Sends[j]) != 0 {
				t.Errorf("node %d send %d: η %s → %s", i, j, w.Sends[j], g.Sends[j])
			}
		}
		for _, p := range []struct {
			name string
			w, g bwc.Rational
		}{
			{"TW", w.TW, g.TW}, {"TS", w.TS, g.TS}, {"TC", w.TC, g.TC}, {"TR", w.TR, g.TR},
		} {
			if p.w.Cmp(p.g) != 0 {
				t.Errorf("node %d: %s %s → %s", i, p.name, p.w, p.g)
			}
		}
	}
}

// TestDeploymentRoundTrip is the wire-format property test: across
// every synthetic platform family and several seeds, marshal a solved
// schedule, unmarshal it against the same platform, and require every
// rate and period to be preserved exactly. The quantized variant
// exercises the large-denominator rationals Section 4's rounding
// produces.
func TestDeploymentRoundTrip(t *testing.T) {
	kinds := []struct {
		name string
		kind bwc.PlatformKind
	}{
		{"uniform", bwc.Uniform},
		{"bandwidth-limited", bwc.BandwidthLimited},
		{"compute-limited", bwc.ComputeLimited},
		{"deep-chain", bwc.DeepChain},
		{"wide-star", bwc.WideStar},
		{"switch-heavy", bwc.SwitchHeavy},
	}
	for _, k := range kinds {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", k.name, seed), func(t *testing.T) {
				tr := bwc.GeneratePlatform(k.kind, 12, seed)
				res := bwc.Solve(tr)
				s, err := bwc.BuildSchedule(res)
				if err != nil {
					t.Fatal(err)
				}
				data, err := bwc.MarshalDeployment(s)
				if err != nil {
					t.Fatal(err)
				}
				back, err := bwc.UnmarshalDeployment(tr, data)
				if err != nil {
					t.Fatal(err)
				}
				sameSchedule(t, s, back)

				qs, _, err := bwc.QuantizeSchedule(res, 720)
				if err != nil {
					t.Fatal(err)
				}
				qdata, err := bwc.MarshalDeployment(qs)
				if err != nil {
					t.Fatal(err)
				}
				qback, err := bwc.UnmarshalDeployment(tr, qdata)
				if err != nil {
					t.Fatal(err)
				}
				sameSchedule(t, qs, qback)
			})
		}
	}
}

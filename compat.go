package bwc

// Deprecated struct-style entry points, kept as thin shims over the
// functional-options API so pre-redesign callers keep compiling with a
// one-line change of name. See MIGRATION.md for the mapping; new code
// should use the ...Option forms.

import "io"

// SolveObserved is Solve with an explicit observer.
//
// Deprecated: use Solve(t, WithObserver(o)).
func SolveObserved(t *Tree, o *Observer) *Result {
	return Solve(t, WithObserver(o))
}

// SolveDistributedObserved is SolveDistributed with an explicit
// observer and the pre-redesign single-value return.
//
// Deprecated: use SolveDistributed(t, WithObserver(o)).
func SolveDistributedObserved(t *Tree, o *Observer) *DistributedResult {
	res, _ := SolveDistributed(t, WithObserver(o)) // never errors without resilience options
	return res
}

// VerifyObserved is Verify with an explicit observer.
//
// Deprecated: use Verify(t, WithObserver(o)).
func VerifyObserved(t *Tree, o *Observer) (Rational, error) {
	return Verify(t, WithObserver(o))
}

// BuildScheduleWith is BuildSchedule with a struct-typed configuration.
//
// Deprecated: use BuildSchedule(res, WithScheduleOptions(o)).
func BuildScheduleWith(res *Result, o ScheduleOptions) (*Schedule, error) {
	return BuildSchedule(res, WithScheduleOptions(o))
}

// QuantizeScheduleWith is QuantizeSchedule with a struct-typed
// configuration.
//
// Deprecated: use QuantizeSchedule(res, den, WithScheduleOptions(o)).
func QuantizeScheduleWith(res *Result, den int64, o ScheduleOptions) (*Schedule, Rational, error) {
	return QuantizeSchedule(res, den, WithScheduleOptions(o))
}

// UnmarshalDeploymentWith is UnmarshalDeployment with a struct-typed
// configuration.
//
// Deprecated: use UnmarshalDeployment(t, data, WithScheduleOptions(o)).
func UnmarshalDeploymentWith(t *Tree, data []byte, o ScheduleOptions) (*Schedule, error) {
	return UnmarshalDeployment(t, data, WithScheduleOptions(o))
}

// SimulateWith is Simulate with the pre-redesign options struct.
//
// Deprecated: use Simulate(s, WithStop(...)/WithPeriods(...)/
// WithTasks(...), or WithSimOptions(o) for the full struct).
func SimulateWith(s *Schedule, o SimOptions) (*Run, error) {
	return Simulate(s, WithSimOptions(o))
}

// ExecuteWith is Execute with the pre-redesign configuration struct
// (cfg.Schedule carries the schedule).
//
// Deprecated: use Execute(s, WithTasks(...), WithScale(...), ...).
func ExecuteWith(cfg ExecuteConfig) (*ExecuteReport, error) {
	return Execute(cfg.Schedule, WithExecuteConfig(cfg))
}

// AnalyzeRunWith is AnalyzeRun with a struct-typed configuration.
//
// Deprecated: use AnalyzeRun(run, WithAnalyzeOptions(o)).
func AnalyzeRunWith(run *Run, o AnalyzeOptions) *HealthReport {
	return AnalyzeRun(run, WithAnalyzeOptions(o))
}

// AnalyzeDynamicRunWith is AnalyzeDynamicRun with a struct-typed
// configuration.
//
// Deprecated: use AnalyzeDynamicRun(run, s, WithAnalyzeOptions(o)).
func AnalyzeDynamicRunWith(run *DynRun, s *Schedule, o AnalyzeOptions) *HealthReport {
	return AnalyzeDynamicRun(run, s, WithAnalyzeOptions(o))
}

// AnalyzeObserverWith is AnalyzeObserver with a struct-typed
// configuration.
//
// Deprecated: use AnalyzeObserver(o, WithAnalyzeOptions(ao)).
func AnalyzeObserverWith(o *Observer, ao AnalyzeOptions) *HealthReport {
	return AnalyzeObserver(o, WithAnalyzeOptions(ao))
}

// AnalyzeTraceWith is AnalyzeTrace with a struct-typed configuration.
//
// Deprecated: use AnalyzeTrace(r, WithAnalyzeOptions(o)).
func AnalyzeTraceWith(r io.Reader, o AnalyzeOptions) (*HealthReport, error) {
	return AnalyzeTrace(r, WithAnalyzeOptions(o))
}

// Result return (Section 9): the paper's counter-example showing that
// folding the result-return time into the task communication time — the
// simplification used by Beaumont et al. and Kreaseck et al. — is wrong,
// because it ignores the receive-port resource. This example walks
// through the 3-node platform on the first-class pipeline — native
// return costs on the platform, the generalized greedy procedure, a
// real engine run draining results to the root — keeps the original LP
// view as a cross-check, and then sweeps the result/input size ratio on
// a larger platform to show where the folded model's error comes from.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	// The paper's platform: a master with no computing power, two
	// children computing 1 task/unit each; sending a task takes 1/2,
	// returning its result takes 1/2. Return costs are part of the
	// platform itself (the text format's optional 5th column carries
	// them too).
	base := bwc.NewBuilder().
		RootSwitch("master").
		Child("master", "w1", bwc.Rat(1, 2), bwc.RatInt(1)).
		Child("master", "w2", bwc.Rat(1, 2), bwc.RatInt(1)).
		MustBuild()
	platform, err := bwc.PlatformWithUniformResultReturn(base, bwc.Rat(1, 2))
	if err != nil {
		log.Fatal(err)
	}

	// The generalized greedy procedure schedules both flows; Verify
	// checks its result against the exact LP optimum.
	sess := bwc.NewSession()
	res := sess.Solve(platform)
	exact, err := bwc.Verify(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separate flows (correct model): %s tasks/unit (LP optimum %s)\n", res.Throughput, exact)
	for i := 0; i < platform.Len(); i++ {
		if a := res.Nodes[i].Alpha; a.IsPos() {
			fmt.Printf("  %s computes %s/unit\n", platform.Name(bwc.NodeID(i)), a)
		}
	}
	fmt.Printf("  master send port:    2 x 1/2 x 1 = 1 (saturated, but feasible)\n")
	fmt.Printf("  master receive port: 2 x 1/2 x 1 = 1 (saturated, but feasible)\n\n")

	folded, err := bwc.FoldedThroughput(platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded model (c' = c + d = 1):  %s task/unit\n", folded)
	fmt.Printf("  the folded model charges the result transfer against the SEND port,\n")
	fmt.Printf("  so the master appears able to serve only one worker per time unit —\n")
	fmt.Printf("  underestimating the platform by a factor of %.0fx.\n\n",
		res.Throughput.Float64()/folded.Float64())

	// Cross-check: the original isolated result-flow LP must agree with
	// the general pipeline on the same platform.
	view, err := bwc.WithUniformResultReturn(base, bwc.Rat(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	crossOpt, _, err := view.OptimalThroughput()
	if err != nil {
		log.Fatal(err)
	}
	if !crossOpt.Equal(exact) {
		log.Fatalf("resultflow LP %s disagrees with the pipeline's %s", crossOpt, exact)
	}
	fmt.Printf("cross-check: isolated result-flow LP agrees at %s tasks/unit\n\n", crossOpt)

	// The schedule is executable, not just a rate: run a batch through
	// the engine and watch every result drain back to the master.
	run, err := sess.Simulate(platform, bwc.WithTasks(40))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("engine run: %d released, %d computed, %d results home (makespan %s)\n\n",
		run.Stats.Generated, run.Stats.Completed, run.Stats.ResultsReturned, run.Stats.Makespan)

	// Sweep the result/input ratio on the Section 8 tree: the folded
	// model drifts away from the truth as results grow.
	big := bwc.PaperExampleTree()
	fmt.Printf("sweep on the 12-node Section 8 platform (result size d per task):\n")
	fmt.Printf("%-8s %12s %12s %10s\n", "d", "true", "folded", "error")
	for _, d := range []bwc.Rational{bwc.RatInt(0), bwc.Rat(1, 4), bwc.Rat(1, 2), bwc.RatInt(1), bwc.RatInt(2)} {
		pp, err := bwc.PlatformWithUniformResultReturn(big, d)
		if err != nil {
			log.Fatal(err)
		}
		trueV, err := bwc.Verify(pp)
		if err != nil {
			log.Fatal(err)
		}
		foldV, err := bwc.FoldedThroughput(pp)
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (trueV.Float64() - foldV.Float64()) / trueV.Float64()
		fmt.Printf("%-8s %12s %12s %9.1f%%\n", d, trueV, foldV, errPct)
	}
	fmt.Printf("\nconclusion: result returns are a first-class platform model here —\n")
	fmt.Printf("the greedy procedure schedules both flows, the engine executes them,\n")
	fmt.Printf("and the LP certifies the rate (see `bwsched resultreturn`).\n")
}

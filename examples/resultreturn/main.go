// Result return (Section 9): the paper's counter-example showing that
// folding the result-return time into the task communication time — the
// simplification used by Beaumont et al. and Kreaseck et al. — is wrong,
// because it ignores the receive-port resource. This example walks through
// the 3-node platform and then sweeps the result/input size ratio on a
// larger platform to show where the folded model's error comes from.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	// The paper's platform: a master with no computing power, two
	// children computing 1 task/unit each; sending a task takes 1/2,
	// returning its result takes 1/2.
	platform := bwc.NewBuilder().
		RootSwitch("master").
		Child("master", "w1", bwc.Rat(1, 2), bwc.RatInt(1)).
		Child("master", "w2", bwc.Rat(1, 2), bwc.RatInt(1)).
		MustBuild()

	p, err := bwc.WithUniformResultReturn(platform, bwc.Rat(1, 2))
	if err != nil {
		log.Fatal(err)
	}

	trueOpt, alphas, err := p.OptimalThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("separate flows (correct model): %s tasks/unit\n", trueOpt)
	for i := 0; i < platform.Len(); i++ {
		if alphas[i].IsPos() {
			fmt.Printf("  %s computes %s/unit\n", platform.Name(bwc.NodeID(i)), alphas[i])
		}
	}
	fmt.Printf("  master send port:    2 x 1/2 x 1 = 1 (saturated, but feasible)\n")
	fmt.Printf("  master receive port: 2 x 1/2 x 1 = 1 (saturated, but feasible)\n\n")

	folded, err := p.FoldedThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded model (c' = c + d = 1):  %s task/unit\n", folded)
	fmt.Printf("  the folded model charges the result transfer against the SEND port,\n")
	fmt.Printf("  so the master appears able to serve only one worker per time unit —\n")
	fmt.Printf("  underestimating the platform by a factor of %.0fx.\n\n",
		trueOpt.Float64()/folded.Float64())

	// Sweep the result/input ratio on the Section 8 tree: the folded
	// model drifts away from the truth as results grow.
	big := bwc.PaperExampleTree()
	fmt.Printf("sweep on the 12-node Section 8 platform (result size d per task):\n")
	fmt.Printf("%-8s %12s %12s %10s\n", "d", "true", "folded", "error")
	for _, d := range []bwc.Rational{bwc.RatInt(0), bwc.Rat(1, 4), bwc.Rat(1, 2), bwc.RatInt(1), bwc.RatInt(2)} {
		pp, err := bwc.WithUniformResultReturn(big, d)
		if err != nil {
			log.Fatal(err)
		}
		trueV, _, err := pp.OptimalThroughput()
		if err != nil {
			log.Fatal(err)
		}
		foldV, err := pp.FoldedThroughput()
		if err != nil {
			log.Fatal(err)
		}
		errPct := 100 * (trueV.Float64() - foldV.Float64()) / trueV.Float64()
		fmt.Printf("%-8s %12s %12s %9.1f%%\n", d, trueV, foldV, errPct)
	}
	fmt.Printf("\nconclusion: scheduling with result return is still open (Section 9);\n")
	fmt.Printf("the LP gives the true optimum but no bandwidth-centric schedule yet.\n")
}

// Dynamic adaptation: Section 5 sketches how the root can re-initiate the
// BW-First procedure when it detects a throughput drop, because the
// procedure costs only two single-number messages per used edge. This
// example degrades one link of the Section 8 platform at "runtime",
// re-negotiates, and compares the schedules before and after — including
// which nodes join or leave the active set.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	platform := bwc.PaperExampleTree()
	// One goroutine per machine stays alive for the whole run: the
	// paper's semi-autonomous protocol with persistent node processes.
	session := bwc.NewProtocolSession(platform)
	defer session.Close()

	before := session.Run()
	fmt.Printf("initial negotiation: throughput %s, %d nodes enrolled, %d protocol messages\n",
		before.Throughput, before.VisitedCount, before.Messages)

	// The link to P1 degrades sharply (1/2 -> 4 time units per task):
	// a congested backbone. The root notices the completion rate drop and
	// re-initiates the procedure against the re-measured platform —
	// without restarting a single node process.
	p1 := platform.MustLookup("P1")
	degraded, err := platform.WithCommTime(p1, bwc.RatInt(4))
	if err != nil {
		log.Fatal(err)
	}
	after, err := session.Renegotiate(degraded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after degradation:   throughput %s, %d nodes enrolled, %d protocol messages\n",
		after.Throughput, after.VisitedCount, after.Messages)

	// Which nodes changed role?
	fmt.Printf("\nrole changes:\n")
	for id := 0; id < platform.Len(); id++ {
		name := platform.Name(bwc.NodeID(id))
		b, a := before.Visited[id], after.Visited[id]
		switch {
		case b && !a:
			fmt.Printf("  %-4s dropped from the schedule\n", name)
		case !b && a:
			fmt.Printf("  %-4s newly enrolled\n", name)
		}
	}

	// The bandwidth-centric principle reshuffles the root's priorities:
	// compare the per-edge rates.
	resBefore := bwc.Solve(platform)
	resAfter := bwc.Solve(degraded)
	fmt.Printf("\nper-edge steady-state rates from the root:\n")
	fmt.Printf("%-6s %12s %12s\n", "child", "before", "after")
	for _, c := range platform.Children(platform.Root()) {
		fmt.Printf("%-6s %12s %12s\n", platform.Name(c), resBefore.SendRate(c), resAfter.SendRate(c))
	}

	// Rebuild schedules and verify both are executable.
	for label, res := range map[string]*bwc.Result{"before": resBefore, "after": resAfter} {
		s, err := bwc.BuildSchedule(res)
		if err != nil {
			log.Fatal(err)
		}
		run, err := bwc.Simulate(s, bwc.WithPeriods(3), bwc.WithSkipIntervals())
		if err != nil {
			log.Fatal(err)
		}
		if err := run.CheckConservation(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: simulated %d tasks over %s units (period %s)",
			label, run.Stats.Completed, run.Trace.End, s.TreePeriod())
	}
	fmt.Println()
}

// Topology selection: Section 5 argues that a fast throughput evaluator
// enables topological studies — choosing the best tree overlay over a
// physical network. This example ranks many candidate overlays of the same
// 30 machines by their optimal steady-state throughput, using BW-First as
// the (cheap) scoring function, and reports how much the best overlay wins
// over the worst and how few nodes the depth-first procedure had to visit.
package main

import (
	"fmt"
	"sort"

	"bwc"
)

type candidate struct {
	seed       int64
	kind       bwc.PlatformKind
	tree       *bwc.Tree
	throughput bwc.Rational
	visited    int
}

func main() {
	kinds := []bwc.PlatformKind{bwc.Uniform, bwc.DeepChain, bwc.WideStar, bwc.SwitchHeavy}
	const perKind = 25
	var trees []*bwc.Tree
	var cands []candidate
	for _, k := range kinds {
		for seed := int64(0); seed < perKind; seed++ {
			trees = append(trees, bwc.GeneratePlatform(k, 30, seed))
			cands = append(cands, candidate{seed: seed, kind: k})
		}
	}
	// Score the whole candidate set in parallel: each BW-First run is
	// independent and visits only the useful nodes.
	results := bwc.SolveBatch(trees, 0)
	totalVisited, totalNodes := 0, 0
	for i, res := range results {
		cands[i].tree = trees[i]
		cands[i].throughput = res.Throughput
		cands[i].visited = res.VisitedCount
		totalVisited += res.VisitedCount
		totalNodes += trees[i].Len()
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[j].throughput.Less(cands[i].throughput)
	})

	fmt.Printf("evaluated %d candidate overlays of 30 machines\n", len(cands))
	fmt.Printf("BW-First visited %d of %d nodes in total (%.0f%% of the work the\n",
		totalVisited, totalNodes, 100*float64(totalVisited)/float64(totalNodes))
	fmt.Printf("bottom-up method would have spent)\n\n")

	fmt.Printf("top overlays by steady-state throughput:\n")
	fmt.Printf("%-4s %-16s %6s %14s %10s\n", "rank", "family", "seed", "tasks/unit", "visited")
	for i := 0; i < 5 && i < len(cands); i++ {
		c := cands[i]
		fmt.Printf("%-4d %-16v %6d %14s %10d\n", i+1, c.kind, c.seed, c.throughput, c.visited)
	}
	best, worst := cands[0], cands[len(cands)-1]
	fmt.Printf("\nbest %s vs worst %s: %.1fx throughput from topology choice alone\n",
		best.throughput, worst.throughput,
		best.throughput.Float64()/worst.throughput.Float64())

	// Sanity: the winner's schedule is feasible end to end.
	s, err := bwc.BuildSchedule(bwc.Solve(best.tree))
	if err != nil {
		fmt.Println("schedule error:", err)
		return
	}
	fmt.Printf("winner's steady-state period: %s units; startup bound %s\n",
		s.TreePeriod(), s.MaxStartupBound())
}

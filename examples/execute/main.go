// Execute: run a Master-Worker application for real — goroutines as
// platform nodes, channels as links — under the paper's event-driven
// schedule. The workload here is a toy checksum search over task-indexed
// blocks; the point is that the schedule drives genuine concurrent work
// and the measured wall-clock makespan tracks the simulator's prediction.
package main

import (
	"fmt"
	"hash/fnv"
	"log"
	"sync/atomic"
	"time"

	"bwc"
)

func main() {
	platform := bwc.PaperExampleTree()
	res := bwc.Solve(platform)
	s, err := bwc.BuildSchedule(res)
	if err != nil {
		log.Fatal(err)
	}

	const n = 120
	scale := 2 * time.Millisecond // one virtual time unit = 2ms

	// Predict the makespan with the discrete-event simulator first.
	pred, err := bwc.Simulate(s, bwc.WithTasks(n), bwc.WithSkipIntervals())
	if err != nil {
		log.Fatal(err)
	}
	predicted := time.Duration(pred.Stats.Makespan.Float64() * float64(scale))
	fmt.Printf("platform: the Section 8 tree, optimal rate %s tasks/unit\n", res.Throughput)
	fmt.Printf("batch:    %d tasks at %v per virtual unit\n", n, scale)
	fmt.Printf("predicted makespan: %v (simulator: %s virtual units)\n\n", predicted, pred.Stats.Makespan)

	// Real execution: each task hashes its block id; nodes run as
	// goroutines and tasks flow over channels per the schedule.
	var checksum uint64
	rep, err := bwc.Execute(s,
		bwc.WithTasks(n),
		bwc.WithScale(scale),
		bwc.WithWork(func(node bwc.NodeID, task int) {
			h := fnv.New64a()
			fmt.Fprintf(h, "block-%d", task)
			atomic.AddUint64(&checksum, h.Sum64())
		}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d tasks in %v (%.0f%% of prediction)\n",
		rep.Total, rep.Elapsed.Round(time.Millisecond),
		100*float64(rep.Elapsed)/float64(predicted))
	fmt.Printf("aggregate checksum: %x\n\n", checksum)

	fmt.Printf("per-node execution counts (only the 8 enrolled nodes work):\n")
	for id := 0; id < platform.Len(); id++ {
		if rep.Executed[id] > 0 {
			fmt.Printf("  %-4s %4d tasks (steady share %s/unit)\n",
				platform.Name(bwc.NodeID(id)), rep.Executed[id], res.Nodes[id].Alpha)
		}
	}
}

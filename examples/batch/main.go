// Batch scheduling: Section 2 positions the bandwidth-centric steady-state
// strategy as a heuristic for the NP-hard makespan problem on
// heterogeneous trees (Dutot). This example schedules finite batches of
// tasks on the Section 8 platform and on a generated SETI platform,
// comparing the achieved makespan against the steady-state lower bound
// N/ρ* and against the demand-driven protocol.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	tr := bwc.PaperExampleTree()
	thr := bwc.Solve(tr).Throughput
	fmt.Printf("platform: the Section 8 tree, optimal rate %s tasks/unit\n\n", thr)

	fmt.Printf("event-driven batches (makespan vs lower bound N/rate):\n")
	fmt.Printf("%-8s %14s %14s %10s %12s\n", "N", "makespan", "lower-bound", "ratio", "overhead")
	for _, n := range []int{10, 50, 200, 1000} {
		res, err := bwc.BatchMakespan(tr, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %14s %14s %10.4f %12s\n",
			n, res.Makespan, res.LowerBound, res.Ratio, res.Overhead)
	}
	fmt.Printf("\nthe overhead (start-up + wind-down + rounding) is bounded, so the\n")
	fmt.Printf("ratio converges to 1: an asymptotically optimal makespan heuristic.\n\n")

	// Head-to-head on a volunteer-computing platform.
	seti := bwc.GeneratePlatform(bwc.SETI, 25, 11)
	const n = 300
	ev, err := bwc.BatchMakespan(seti, n)
	if err != nil {
		log.Fatal(err)
	}
	dd, err := bwc.BatchMakespanDemandDriven(seti, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SETI platform (%d nodes), batch of %d tasks:\n", seti.Len(), n)
	fmt.Printf("%-14s makespan %-12s ratio %.4f\n", "event-driven", ev.Makespan, ev.Ratio)
	fmt.Printf("%-14s makespan %-12s ratio %.4f\n", "demand-driven", dd.Makespan, dd.Ratio)
}

// Quickstart: build a small heterogeneous platform, compute its optimal
// steady-state throughput with BW-First, reconstruct the event-driven
// schedules, and simulate a run with start-up and wind-down.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	// A master with two workers. The master needs 2 time units per task;
	// w1 is slow to compute (3) but cheap to reach (1); w2 is faster (2)
	// but behind a slow link (3).
	platform := bwc.NewBuilder().
		Root("master", bwc.RatInt(2)).
		Child("master", "w1", bwc.RatInt(1), bwc.RatInt(3)).
		Child("master", "w2", bwc.RatInt(3), bwc.RatInt(2)).
		MustBuild()

	// 1. Optimal steady-state throughput (the BW-First procedure).
	res := bwc.Solve(platform)
	fmt.Printf("optimal throughput: %s tasks per time unit\n", res.Throughput)
	fmt.Printf("transactions:\n%s", res.TranscriptString())

	// 2. Each node's autonomous event-driven schedule.
	s, err := bwc.BuildSchedule(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocal schedules (no clock needed except at the root):\n%s", s)
	fmt.Printf("tree period: %s units (%s tasks per period)\n\n",
		s.TreePeriod(), res.Throughput.MulInt(s.TreePeriod()))

	// 3. Simulate: start from empty buffers, stop delegating after six
	// root periods, drain.
	run, err := bwc.Simulate(s, bwc.WithPeriods(6))
	if err != nil {
		log.Fatal(err)
	}
	if err := run.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	st := run.Stats
	fmt.Printf("simulated %d tasks; steady from t=%s; wind-down %s; max %d buffered\n",
		st.Completed, st.SteadyStart, st.WindDown, st.MaxHeld)

	// 4. A Gantt excerpt, Figure-5 style.
	fmt.Printf("\nGantt (first 24 units):\n%s",
		bwc.GanttASCII(run.Trace, bwc.RatInt(0), bwc.RatInt(24), bwc.RatInt(1)))
}

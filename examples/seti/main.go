// SETI-style campaign: a master distributes measurement-processing tasks
// through institutional gateways to volunteer machines — the application
// class that motivates the paper (SETI@home, sequence comparison,
// Entropia). The example shows the full pipeline on a generated wide-area
// platform, including the bandwidth-centric pruning of volunteers whose
// links cannot sustain useful work, and checks how quickly the campaign
// approaches the optimal rate.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	// A 40-node volunteer-computing hierarchy: master, 2-4 institutional
	// gateways on fat links, dozens of home machines on thin links.
	platform := bwc.GeneratePlatform(bwc.SETI, 40, 2026)
	fmt.Printf("platform: %d nodes, height %d\n", platform.Len(), platform.Height())

	res := bwc.Solve(platform)
	fmt.Printf("optimal rate: %s tasks/unit (%.3f)\n", res.Throughput, res.Throughput.Float64())

	// The bandwidth-centric principle prunes volunteers that cannot be
	// fed: their links are too slow relative to closer consumers.
	unused := res.UnvisitedNodes()
	fmt.Printf("volunteers enrolled: %d of %d (pruned %d whose links cannot sustain work)\n",
		res.VisitedCount, platform.Len(), len(unused))

	s, err := bwc.BuildSchedule(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steady-state period: %s units\n", s.TreePeriod())
	fmt.Printf("start-up bound (Prop. 4): %s units\n\n", s.MaxStartupBound())

	// Run a campaign: delegate work for 600 time units, then stop and
	// drain (results are tiny for SETI-like apps, so no return traffic).
	run, err := bwc.Simulate(s, bwc.WithStop(bwc.RatInt(600)), bwc.WithSkipIntervals())
	if err != nil {
		log.Fatal(err)
	}
	if err := run.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	st := run.Stats
	fmt.Printf("campaign: %d work units completed in %s time units\n", st.Completed, run.Trace.End)
	fmt.Printf("wind-down after stop: %s units; peak buffered: %d tasks\n", st.WindDown, st.MaxHeld)

	// Effective rate over the campaign vs the optimum.
	eff := float64(st.Completed) / run.Trace.End.Float64()
	fmt.Printf("effective rate: %.3f tasks/unit (%.1f%% of the steady-state optimum)\n",
		eff, 100*eff/res.Throughput.Float64())

	// What if results were NOT negligible? Section 9: with result files
	// 1/4 the size of inputs, the folded model misestimates the optimum.
	d := bwc.Rat(1, 4)
	p, err := bwc.WithUniformResultReturn(platform, d)
	if err != nil {
		log.Fatal(err)
	}
	trueOpt, _, err := p.OptimalThroughput()
	if err != nil {
		log.Fatal(err)
	}
	folded, err := p.FoldedThroughput()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith result return (d = %s per task):\n", d)
	fmt.Printf("  true optimum (separate flows): %s tasks/unit\n", trueOpt)
	fmt.Printf("  folded-model estimate:         %s tasks/unit\n", folded)

	// Volunteer fleets churn: machines drift, leave, rejoin. Replay the
	// campaign under a seeded stochastic churn process and check the
	// graceful-degradation contract — retained throughput is compared
	// against an oracle full re-solve on the final platform, and a
	// collapse below the retention floor would surface as
	// bwc.ErrChurnCollapse (exit code 9 in the CLI).
	churn := bwc.ChurnConfig{Seed: 2026, Rate: 2}
	events := bwc.GenerateChurn(platform, bwc.RatInt(600), churn)
	rep, err := bwc.SimulateChurn(s,
		bwc.WithChurn(churn),
		bwc.WithStop(bwc.RatInt(600)),
		bwc.WithRetentionFloor(0.3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder churn (seed %d, %d events over 600 units):\n", churn.Seed, len(events))
	fmt.Printf("  retained %s of the oracle's %s (%.1f%%), %d re-solve cycle(s), %d quarantined\n",
		rep.Final, rep.Oracle, 100*rep.Retention, len(rep.ReSolves), len(rep.Quarantined))
	if rep.Healed {
		fmt.Printf("  the campaign held its steady state through the churn window\n")
	}
}

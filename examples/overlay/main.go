// Overlay extraction: the platform underneath a Master-Worker deployment
// is a general network; the paper's machinery runs on a tree overlay
// chosen on top of it (Section 1: trees avoid routing decisions). This
// example builds a small campus network, compares the tree overlays
// produced by three heuristics against the exact general-graph optimum
// (the LP of Banino et al. [2]), deploys the winner end to end, and shows
// what the tree restriction cost.
package main

import (
	"fmt"
	"log"

	"bwc"
)

func main() {
	// A campus: the master in the machine room, a core switch, two
	// department switches, and workers of varying speed. Cross links
	// give the graph routing choices a tree must forgo.
	g := bwc.NewGraphBuilder().
		Node("master", bwc.RatInt(4)).
		Switch("core").
		Switch("deptA").
		Switch("deptB").
		Node("a1", bwc.RatInt(2)).
		Node("a2", bwc.RatInt(3)).
		Node("b1", bwc.RatInt(1)).
		Node("b2", bwc.RatInt(2)).
		Link("master", "core", bwc.Rat(1, 2)).
		Link("core", "deptA", bwc.RatInt(1)).
		Link("core", "deptB", bwc.RatInt(2)).
		Link("deptA", "a1", bwc.RatInt(1)).
		Link("deptA", "a2", bwc.RatInt(1)).
		Link("deptB", "b1", bwc.RatInt(1)).
		Link("deptB", "b2", bwc.RatInt(2)).
		Link("a2", "b1", bwc.RatInt(1)). // maintenance cross link
		Link("master", "deptB", bwc.RatInt(3)).
		Master("master").
		MustBuild()

	opt, err := bwc.GraphThroughput(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("campus graph: %d nodes, %d links\n", g.Len(), g.EdgeCount())
	fmt.Printf("graph optimum (no routing restriction): %s tasks/unit\n\n", opt)

	fmt.Printf("%-8s %14s %12s\n", "overlay", "tasks/unit", "of optimum")
	var best *bwc.Tree
	bestThr := bwc.RatInt(0)
	for _, k := range []bwc.OverlayKind{bwc.OverlayGreedy, bwc.OverlayBFS, bwc.OverlayDFS} {
		tr, err := g.SpanningTree(k)
		if err != nil {
			log.Fatal(err)
		}
		thr := bwc.Solve(tr).Throughput
		fmt.Printf("%-8s %14s %11.1f%%\n", k, thr, 100*thr.Float64()/opt.Float64())
		if bestThr.Less(thr) {
			best, bestThr = tr, thr
		}
	}

	// Deploy the winner: schedules, then a short simulated campaign.
	fmt.Printf("\ndeploying the best overlay (%s tasks/unit):\n", bestThr)
	res := bwc.Solve(best)
	s, err := bwc.BuildSchedule(res)
	if err != nil {
		log.Fatal(err)
	}
	run, err := bwc.Simulate(s, bwc.WithPeriods(6), bwc.WithSkipIntervals())
	if err != nil {
		log.Fatal(err)
	}
	if err := run.CheckConservation(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  period %s, %d tasks in %s units, wind-down %s, max %d buffered\n",
		s.TreePeriod(), run.Stats.Completed, run.Trace.End, run.Stats.WindDown, run.Stats.MaxHeld)
	fmt.Printf("\ncost of the tree restriction on this network: %.1f%%\n",
		100*(1-bestThr.Float64()/opt.Float64()))
}

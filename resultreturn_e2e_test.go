package bwc_test

import (
	"strings"
	"testing"

	"bwc"
	"bwc/internal/resultflow"
)

// counterExamplePlatform is Section 9's counter-example: a switch root
// with two c = 1/2, w = 1 workers, each returning results at d = 1/2.
const counterExamplePlatform = `
M  -  -   inf
P1 M  1/2 1   1/2
P2 M  1/2 1   1/2
`

// TestE10ResultReturnEndToEnd is the E10 regression pinned through the
// whole pipeline, not just the LP demo: the counter-example platform
// must sustain 2 tasks/unit with separate result flows where the folded
// model predicts 1, and an actual engine run must realize the separate
// flows — every result drained to the root, the conformance analyzer's
// result-return verdict PASS (its folded-model detector asserts the
// measured rate exceeds the folded bound). The isolated resultflow LP
// stays as a cross-check oracle against the general lp path.
func TestE10ResultReturnEndToEnd(t *testing.T) {
	tr, err := bwc.ParsePlatformString(counterExamplePlatform)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasResultReturn() {
		t.Fatal("5th-column return costs did not reach the tree")
	}

	// Solver layer: greedy = LP exact = 2, folded baseline = 1.
	exact, err := bwc.Verify(tr)
	if err != nil {
		t.Fatal(err)
	}
	sess := bwc.NewSession()
	res := sess.Solve(tr)
	folded, err := bwc.FoldedThroughput(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Throughput.Equal(bwc.RatInt(2)) || !exact.Equal(bwc.RatInt(2)) {
		t.Fatalf("separate flows: greedy %s, LP %s, want 2", res.Throughput, exact)
	}
	if !folded.Equal(bwc.RatInt(1)) {
		t.Fatalf("folded baseline %s, want 1", folded)
	}

	// Cross-check: the isolated resultflow LP must agree with the
	// general pipeline on the same platform.
	p, err := resultflow.UniformResult(tr, bwc.Rat(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	rfOpt, _, err := p.OptimalThroughput()
	if err != nil {
		t.Fatal(err)
	}
	if !rfOpt.Equal(exact) {
		t.Fatalf("resultflow LP %s disagrees with general LP %s", rfOpt, exact)
	}

	// Engine layer: run a batch, require full drain and the analyzer's
	// result-return PASS. 2-vs-1 shows up as the makespan: 40 tasks at
	// the separate-flows rate finish in ~20 + startup; the folded model
	// cannot beat 40.
	const tasks = 40
	ob := bwc.NewObserver()
	run, err := sess.Simulate(tr, bwc.WithTasks(tasks), bwc.WithObserver(ob))
	if err != nil {
		t.Fatal(err)
	}
	if err := run.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if run.Stats.ResultsReturned != tasks {
		t.Fatalf("%d results home, want %d", run.Stats.ResultsReturned, tasks)
	}
	if !run.Stats.Makespan.Less(bwc.RatInt(tasks)) {
		t.Fatalf("makespan %s did not beat the folded model's %d-unit bound", run.Stats.Makespan, tasks)
	}
	rep := bwc.AnalyzeRun(run)
	check := rep.Check("result-return")
	if check == nil {
		t.Fatal("analyzer produced no result-return verdict")
	}
	if check.Verdict != bwc.HealthPass {
		t.Fatalf("result-return verdict %s (%s), want PASS", check.Verdict, check.Detail)
	}
	if !strings.Contains(check.Detail, "folded") {
		t.Fatalf("verdict detail %q does not mention the folded-model comparison", check.Detail)
	}
}

// TestE10FoldedRegressionFails pins the negative side of E10: a folded
// platform (d merged into c, no separate flows) runs at the folded rate,
// so its batch takes about twice as long. This is the behavior the
// separate-flows model exists to beat.
func TestE10FoldedRegressionFails(t *testing.T) {
	foldedPlatform, err := bwc.ParsePlatformString(`
M  -  -  inf
P1 M  1  1
P2 M  1  1
`)
	if err != nil {
		t.Fatal(err)
	}
	sess := bwc.NewSession()
	res := sess.Solve(foldedPlatform)
	if !res.Throughput.Equal(bwc.RatInt(1)) {
		t.Fatalf("folded platform rate %s, want 1", res.Throughput)
	}
	const tasks = 40
	run, err := sess.Simulate(foldedPlatform, bwc.WithTasks(tasks))
	if err != nil {
		t.Fatal(err)
	}
	if run.Stats.Makespan.Less(bwc.RatInt(tasks)) {
		t.Fatalf("folded makespan %s beat the folded bound %d — model error inverted", run.Stats.Makespan, tasks)
	}
}

# Tier-1 verification: everything a change must pass before merging.
# `make tier1` = format gate + build + tests + vet + race detector on the
# packages that actually run concurrent code (the distributed protocol,
# the goroutine runtime, the adaptive controller, and the observability
# layer's lock-free paths).

GO ?= go

.PHONY: tier1 fmt build test vet race bench bench-trajectory bench-baseline adapt-demo engine-diff churn-smoke serve-smoke resultreturn-smoke

tier1: fmt build test vet race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

build:
	$(GO) build ./...

# -count=2 runs every test twice in one process, catching state leaked
# between runs (package-level caches, leftover goroutines, sync.Once
# misuse in the Session memo).
test:
	$(GO) test -count=2 ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race . ./internal/engine ./internal/proto ./internal/runtime ./internal/adapt ./internal/sim ./internal/obs ./internal/obs/analyze ./internal/server ./api/v1 ./cmd/bwsched

# Differential smoke: the virtual-time and wall-clock backends must
# produce byte-identical per-node event streams through the shared
# engine (run twice, under the race detector). Covers the forward-only
# sim-vs-runtime proof, the zero-return byte-identity sweep across
# every treegen family, and the sim-vs-runtime proof on result-return
# platforms.
engine-diff:
	$(GO) test -race -count=2 -run TestDifferential -v ./internal/engine

# Observability overhead benchmarks (EXPERIMENTS.md records the numbers).
bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

# Perf trajectory: run the registered suite (internal/perf/suite) and
# gate it against the committed baseline. This is what the CI bench-gate
# job runs; exit code 8 means a metric regressed. BENCHTIME is pinned so
# every point on the trajectory measures the same way.
BENCHTIME ?= 1s
BASELINE  ?= BENCH_PR10.json
bench-trajectory:
	$(GO) run ./cmd/bwsched bench -short -benchtime $(BENCHTIME) -compare $(BASELINE)

# Refresh the committed baseline (full suite, with profiles). Run on the
# machine whose fingerprint the trajectory should carry, then commit the
# updated $(BASELINE) — refreshing it is a deliberate act, not a test fix.
bench-baseline:
	$(GO) run ./cmd/bwsched bench -benchtime $(BENCHTIME) -label $(patsubst BENCH_%.json,%,$(BASELINE)) \
		-out $(BASELINE) -profile bench-profiles

# The Section 5 adaptation loop end to end: degrade P1's link mid-run,
# watch the drift fire, the schedule re-negotiate and hot-swap, and the
# post-swap regime pass conformance.
adapt-demo:
	$(GO) run ./cmd/bwsched example | \
		$(GO) run ./cmd/bwsched adapt -degrade P1=4 -at 120 -stop 400

# Churn smoke: the churn-hardened loop must self-stabilize under the
# pinned seed (exit 0) and collapse with exit code 9 when crash-heavy
# churn drives retained throughput below the retention floor. Runs the
# built binary, not `go run`, which flattens exit codes to 1.
churn-smoke:
	$(GO) build -o /tmp/bwsched-churn ./cmd/bwsched
	/tmp/bwsched-churn example > /tmp/bwsched-churn-platform.txt
	/tmp/bwsched-churn churn -f /tmp/bwsched-churn-platform.txt \
		-seed 6 -rate 3 -duration 600
	code=0; /tmp/bwsched-churn churn -f /tmp/bwsched-churn-platform.txt \
		-seed 3 -rate 40 -crash-frac 0.9 -duration 600 || code=$$?; \
		test "$$code" -eq 9

# Result-return smoke: the Section-9 counter-example end to end. The
# CLI must report the 2-vs-1 separate-vs-folded advantage, drain every
# result through the engine, and take a PASS from the analyzer's
# result-return check (exit 0). Forward-only platforms must be refused
# (exit 1). Built binary, not `go run`, to preserve exit codes.
resultreturn-smoke:
	$(GO) build -o /tmp/bwsched-rr ./cmd/bwsched
	printf 'M - - inf\nP1 M 1/2 1 1/2\nP2 M 1/2 1 1/2\n' \
		> /tmp/bwsched-rr-platform.txt
	/tmp/bwsched-rr resultreturn -f /tmp/bwsched-rr-platform.txt -n 80
	printf 'M - - inf\nP1 M 1/2 1\nP2 M 1/2 1\n' \
		> /tmp/bwsched-rr-forward.txt
	code=0; /tmp/bwsched-rr resultreturn -f /tmp/bwsched-rr-forward.txt \
		|| code=$$?; test "$$code" -eq 1
	/tmp/bwsched-rr resultreturn -f /tmp/bwsched-rr-forward.txt -d 1/2 -n 40

# Control-plane smoke: start bwschedd on a random port and drive the
# api/v1 wire end to end — cache miss/hit markers, the typed 422
# envelope, an SSE analyzer verdict, and exit 10 on a dead daemon.
serve-smoke:
	sh scripts/serve-smoke.sh

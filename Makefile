# Tier-1 verification: everything a change must pass before merging.
# `make tier1` = build + tests + vet + race detector on the packages that
# actually run concurrent code (the distributed protocol, the goroutine
# runtime, and the observability layer's lock-free paths).

GO ?= go

.PHONY: tier1 build test vet race bench

tier1: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/proto ./internal/runtime ./internal/obs ./internal/obs/analyze

# Observability overhead benchmarks (EXPERIMENTS.md records the numbers).
bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

# Tier-1 verification: everything a change must pass before merging.
# `make tier1` = format gate + build + tests + vet + race detector on the
# packages that actually run concurrent code (the distributed protocol,
# the goroutine runtime, the adaptive controller, and the observability
# layer's lock-free paths).

GO ?= go

.PHONY: tier1 fmt build test vet race bench bench-trajectory bench-baseline adapt-demo engine-diff

tier1: fmt build test vet race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi

build:
	$(GO) build ./...

# -count=2 runs every test twice in one process, catching state leaked
# between runs (package-level caches, leftover goroutines, sync.Once
# misuse in the Session memo).
test:
	$(GO) test -count=2 ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race . ./internal/engine ./internal/proto ./internal/runtime ./internal/adapt ./internal/obs ./internal/obs/analyze

# Differential smoke: the virtual-time and wall-clock backends must
# produce byte-identical per-node event streams through the shared
# engine (run twice, under the race detector).
engine-diff:
	$(GO) test -race -count=2 -run TestDifferentialSimVsRuntime -v ./internal/engine

# Observability overhead benchmarks (EXPERIMENTS.md records the numbers).
bench:
	$(GO) test -bench 'BenchmarkObs' -benchmem -run '^$$' .

# Perf trajectory: run the registered suite (internal/perf/suite) and
# gate it against the committed baseline. This is what the CI bench-gate
# job runs; exit code 8 means a metric regressed. BENCHTIME is pinned so
# every point on the trajectory measures the same way.
BENCHTIME ?= 1s
BASELINE  ?= BENCH_PR6.json
bench-trajectory:
	$(GO) run ./cmd/bwsched bench -short -benchtime $(BENCHTIME) -compare $(BASELINE)

# Refresh the committed baseline (full suite, with profiles). Run on the
# machine whose fingerprint the trajectory should carry, then commit the
# updated $(BASELINE) — refreshing it is a deliberate act, not a test fix.
bench-baseline:
	$(GO) run ./cmd/bwsched bench -benchtime $(BENCHTIME) -label $(patsubst BENCH_%.json,%,$(BASELINE)) \
		-out $(BASELINE) -profile bench-profiles

# The Section 5 adaptation loop end to end: degrade P1's link mid-run,
# watch the drift fire, the schedule re-negotiate and hot-swap, and the
# post-swap regime pass conformance.
adapt-demo:
	$(GO) run ./cmd/bwsched example | \
		$(GO) run ./cmd/bwsched adapt -degrade P1=4 -at 120 -stop 400

module bwc

go 1.22
